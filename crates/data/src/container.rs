//! The `PMKMGB02` versioned block container.
//!
//! GB01 is a single uncompressed blob with one whole-file checksum — fine
//! for local buffered reads, useless for ranged reads, compression, or
//! per-block integrity. GB02 splits the payload into fixed-point-count
//! blocks, compresses each independently, and appends a block index plus a
//! fixed-size footer so a reader can locate any block with two ranged
//! reads from the end of the object:
//!
//! ```text
//! header   32 B   magic "PMKMGB02" (8) · cell u32 · dim u32 · count u64
//!                 · block_points u32 · codec u8 · reserved [u8; 3]
//! blocks   ...    each block: codec-encoded bytes of `point_count × dim`
//!                 little-endian f64 values, written densely in order
//! index    n × 49 B   per block: offset u64 · clen u64 · ulen u64
//!                 · checksum u64 (FNV-1a over UNCOMPRESSED bytes)
//!                 · point_start u64 · point_count u64 · codec u8
//! footer   32 B   index_offset u64 · n_blocks u64
//!                 · index_checksum u64 (FNV-1a over index bytes)
//!                 · magic "PMKM2END" (8)
//! ```
//!
//! Every multi-byte field is little-endian. Per-block checksums are over
//! the uncompressed bytes so a decode bug and a storage flip are equally
//! loud; the index itself is checksummed so corrupt metadata is a clean
//! [`DataError`], never garbage points. [`Gb02Reader`] is backend-agnostic
//! ([`ScanBackend`]) and `&self`-threadsafe, so a prefetch thread can
//! decode block *i+1* while the scan operator clusters block *i*.

use crate::backend::{open_backend, BackendKind, ScanBackend};
use crate::bucket::{fnv1a, GridBucket, HEADER_LEN, MAGIC};
use crate::codec::{self, Codec};
use crate::error::{DataError, Result};
use crate::grid::GridCell;
use bytes::Buf;
use pmkm_core::{Dataset, PointSource};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// GB02 file magic.
pub const MAGIC2: [u8; 8] = *b"PMKMGB02";
/// GB02 trailing footer magic.
pub const FOOTER_MAGIC: [u8; 8] = *b"PMKM2END";
/// GB02 header size in bytes.
pub const HEADER2_LEN: usize = 8 + 4 + 4 + 8 + 4 + 1 + 3;
/// One block-index entry in bytes.
pub const INDEX_ENTRY_LEN: usize = 8 * 6 + 1;
/// Footer size in bytes.
pub const FOOTER_LEN: usize = 8 + 8 + 8 + 8;
/// Default points per block: 4096 × 6 dims × 8 B ≈ 192 KiB uncompressed,
/// large enough to amortize per-block work, small enough to double-buffer.
pub const DEFAULT_BLOCK_POINTS: usize = 4096;

/// One entry of the trailing block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// File offset of the stored (possibly compressed) block.
    pub offset: u64,
    /// Stored length in bytes.
    pub clen: u64,
    /// Uncompressed length in bytes.
    pub ulen: u64,
    /// Word-wise FNV-1a (see [`fnv1a_words`]) over the uncompressed
    /// block bytes.
    pub checksum: u64,
    /// Index of the first point in this block.
    pub point_start: u64,
    /// Points in this block.
    pub point_count: u64,
    /// Codec this block was stored with.
    pub codec: Codec,
}

/// Writer-side summary, surfaced by `pmkm convert` and the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gb02Stats {
    /// Blocks written.
    pub blocks: usize,
    /// Uncompressed payload bytes.
    pub payload_bytes: u64,
    /// Total file bytes (header + stored blocks + index + footer).
    pub file_bytes: u64,
}

impl Gb02Stats {
    /// Stored-payload compression ratio (uncompressed / stored payload);
    /// 1.0 for an empty bucket.
    pub fn ratio(&self) -> f64 {
        let overhead = (HEADER2_LEN + FOOTER_LEN) as u64 + (self.blocks * INDEX_ENTRY_LEN) as u64;
        let stored = self.file_bytes.saturating_sub(overhead);
        if stored == 0 {
            1.0
        } else {
            self.payload_bytes as f64 / stored as f64
        }
    }
}

/// FNV-1a over the little-endian u64 words of `bytes` (whose length must
/// be a multiple of 8 — block payloads are always whole `f64`s). Hashing
/// a word per multiply instead of a byte breaks FNV's byte-serial
/// dependency chain, so per-block integrity checking costs ~1/8th of the
/// byte-wise hash GB01 uses and stops dominating scan-bound reads;
/// corruption detection is unchanged (any flipped bit changes its word,
/// which changes the hash).
fn fnv1a_words(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len().is_multiple_of(8), "block payloads are whole f64s");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in bytes.chunks_exact(8) {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes `bucket` as a GB02 container.
pub fn gb02_to_bytes(
    bucket: &GridBucket,
    block_codec: Codec,
    block_points: usize,
) -> Result<(Vec<u8>, Gb02Stats)> {
    if block_points == 0 {
        return Err(DataError::Invalid("block_points must be at least 1".into()));
    }
    let dim = bucket.points.dim();
    let flat = bucket.points.as_flat();
    let mut out = Vec::with_capacity(HEADER2_LEN + flat.len() * 8 + FOOTER_LEN);
    out.extend_from_slice(&MAGIC2);
    out.extend_from_slice(&bucket.cell.index().to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(bucket.points.len() as u64).to_le_bytes());
    out.extend_from_slice(&(block_points as u32).to_le_bytes());
    out.push(block_codec.id());
    out.extend_from_slice(&[0u8; 3]);
    debug_assert_eq!(out.len(), HEADER2_LEN);

    let mut entries: Vec<BlockEntry> = Vec::new();
    let mut raw_block = Vec::with_capacity(block_points * dim * 8);
    for (bi, chunk) in flat.chunks(block_points * dim).enumerate() {
        raw_block.clear();
        codec::f64s_to_le(chunk, &mut raw_block);
        let checksum = fnv1a_words(&raw_block);
        let stored = codec::encode(block_codec, &raw_block)?;
        entries.push(BlockEntry {
            offset: out.len() as u64,
            clen: stored.len() as u64,
            ulen: raw_block.len() as u64,
            checksum,
            point_start: (bi * block_points) as u64,
            point_count: (chunk.len() / dim) as u64,
            codec: block_codec,
        });
        out.extend_from_slice(&stored);
    }

    let index_offset = out.len() as u64;
    let index_start = out.len();
    for e in &entries {
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.clen.to_le_bytes());
        out.extend_from_slice(&e.ulen.to_le_bytes());
        out.extend_from_slice(&e.checksum.to_le_bytes());
        out.extend_from_slice(&e.point_start.to_le_bytes());
        out.extend_from_slice(&e.point_count.to_le_bytes());
        out.push(e.codec.id());
    }
    let index_checksum = fnv1a(&out[index_start..]);
    out.extend_from_slice(&index_offset.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    out.extend_from_slice(&index_checksum.to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);

    let stats = Gb02Stats {
        blocks: entries.len(),
        payload_bytes: (flat.len() * 8) as u64,
        file_bytes: out.len() as u64,
    };
    Ok((out, stats))
}

/// Writes `bucket` to `path` as a GB02 container.
pub fn write_gb02(
    bucket: &GridBucket,
    path: &Path,
    block_codec: Codec,
    block_points: usize,
) -> Result<Gb02Stats> {
    let (bytes, stats) = gb02_to_bytes(bucket, block_codec, block_points)?;
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(stats)
}

/// Statistics from one block read, for scan metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockReadStats {
    /// Bytes fetched from the backend.
    pub stored_bytes: u64,
    /// Bytes after decode.
    pub payload_bytes: u64,
    /// True when the block was decoded from a borrowed mmap range with no
    /// intermediate payload buffer.
    pub zero_copy: bool,
}

/// A backend-agnostic GB02 reader. Opening parses footer, index, and
/// header and fully validates the block map; [`Gb02Reader::read_block`]
/// then serves any block through `&self`, so readers can be shared with a
/// prefetch thread.
pub struct Gb02Reader {
    backend: Box<dyn ScanBackend>,
    /// Cell id from the header.
    pub cell: GridCell,
    /// Attributes per point.
    pub dim: usize,
    /// Total points promised by the header.
    pub count: usize,
    /// Nominal points per block from the header.
    pub block_points: usize,
    /// Default codec from the header (individual blocks may differ).
    pub default_codec: Codec,
    index: Vec<BlockEntry>,
}

impl Gb02Reader {
    /// Opens a GB02 container at `path` through the given backend kind
    /// (default backend parameters; pass a configured backend to
    /// [`Gb02Reader::open`] for sim-object-store latency/faults).
    pub fn open_path(path: &Path, kind: BackendKind) -> Result<Self> {
        Self::open(open_backend(path, kind)?)
    }

    /// Opens a GB02 container over an already-constructed backend.
    pub fn open(backend: Box<dyn ScanBackend>) -> Result<Self> {
        let total = backend.len();
        let min_len = (HEADER2_LEN + FOOTER_LEN) as u64;
        if total < min_len {
            return Err(DataError::Format(format!(
                "container of {total} bytes is shorter than header+footer ({min_len})"
            )));
        }

        // Footer first: it locates everything else.
        let footer = backend.read_range(total - FOOTER_LEN as u64, FOOTER_LEN)?;
        let mut f = &footer[..];
        let index_offset = f.get_u64_le();
        let n_blocks = f.get_u64_le();
        let index_checksum = f.get_u64_le();
        let mut fmagic = [0u8; 8];
        f.copy_to_slice(&mut fmagic);
        if fmagic != FOOTER_MAGIC {
            return Err(DataError::Format(
                "bad footer magic; truncated or not a PMKMGB02 container".into(),
            ));
        }
        let index_len = n_blocks
            .checked_mul(INDEX_ENTRY_LEN as u64)
            .ok_or_else(|| DataError::Format("block index size overflows".into()))?;
        let expected_index_end = total - FOOTER_LEN as u64;
        if index_offset < HEADER2_LEN as u64
            || index_offset.checked_add(index_len) != Some(expected_index_end)
        {
            return Err(DataError::Format(format!(
                "block index [{index_offset}, +{index_len}) does not fill the space \
                 before the footer (object is {total} bytes)"
            )));
        }

        let index_bytes = backend.read_range(index_offset, index_len as usize)?;
        let actual = fnv1a(&index_bytes);
        if actual != index_checksum {
            return Err(DataError::ChecksumMismatch { expected: index_checksum, actual });
        }

        let header = backend.read_range(0, HEADER2_LEN)?;
        let mut h = &header[..];
        let mut magic = [0u8; 8];
        h.copy_to_slice(&mut magic);
        if magic != MAGIC2 {
            return Err(DataError::Format("bad magic; not a PMKMGB02 container".into()));
        }
        let cell = GridCell::from_index(h.get_u32_le())?;
        let dim = h.get_u32_le() as usize;
        let count = h.get_u64_le() as usize;
        let block_points = h.get_u32_le() as usize;
        let default_codec = Codec::from_id(h.get_u8())?;
        if dim == 0 {
            return Err(DataError::Format("container declares zero dimensions".into()));
        }
        if block_points == 0 && count > 0 {
            return Err(DataError::Format("container declares zero points per block".into()));
        }

        // Parse and validate the block map: blocks must tile the payload
        // region densely and the point ranges must partition [0, count).
        let mut index = Vec::with_capacity(n_blocks as usize);
        let mut b = &index_bytes[..];
        let mut byte_cursor = HEADER2_LEN as u64;
        let mut point_cursor = 0u64;
        for i in 0..n_blocks {
            let entry = BlockEntry {
                offset: b.get_u64_le(),
                clen: b.get_u64_le(),
                ulen: b.get_u64_le(),
                checksum: b.get_u64_le(),
                point_start: b.get_u64_le(),
                point_count: b.get_u64_le(),
                codec: Codec::from_id(b.get_u8())?,
            };
            if entry.offset != byte_cursor {
                return Err(DataError::Format(format!(
                    "block {i} starts at byte {} but the previous block ends at \
                     {byte_cursor}: overlapping or gapped block ranges",
                    entry.offset
                )));
            }
            if entry.point_start != point_cursor {
                return Err(DataError::Format(format!(
                    "block {i} starts at point {} but the previous block ends at \
                     {point_cursor}: overlapping or gapped point ranges",
                    entry.point_start
                )));
            }
            if entry.point_count == 0 {
                return Err(DataError::Format(format!("block {i} holds zero points")));
            }
            if entry.ulen != entry.point_count * dim as u64 * 8 {
                return Err(DataError::Format(format!(
                    "block {i} claims {} uncompressed bytes for {} points × {dim} dims",
                    entry.ulen, entry.point_count
                )));
            }
            byte_cursor = byte_cursor.checked_add(entry.clen).ok_or_else(|| {
                DataError::Format(format!("block {i} extent overflows the object"))
            })?;
            point_cursor += entry.point_count;
            index.push(entry);
        }
        if byte_cursor != index_offset {
            return Err(DataError::Format(format!(
                "blocks end at byte {byte_cursor} but the index starts at {index_offset}"
            )));
        }
        if point_cursor != count as u64 {
            return Err(DataError::Format(format!(
                "blocks hold {point_cursor} points, header promises {count}"
            )));
        }

        Ok(Self { backend, cell, dim, count, block_points, default_codec, index })
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.index.len()
    }

    /// The block map.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.index
    }

    /// One block's index entry.
    pub fn entry(&self, i: usize) -> &BlockEntry {
        &self.index[i]
    }

    /// The backend kind serving this reader.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Reads, integrity-checks, and decodes block `i` into a dataset.
    pub fn read_block(&self, i: usize) -> Result<Dataset> {
        self.read_block_with_stats(i).map(|(ds, _)| ds)
    }

    /// [`Gb02Reader::read_block`], plus byte accounting for scan metrics.
    pub fn read_block_with_stats(&self, i: usize) -> Result<(Dataset, BlockReadStats)> {
        let e = *self.entry(i);
        let clen = usize::try_from(e.clen)
            .map_err(|_| DataError::Format(format!("block {i} too large for this host")))?;
        let ulen = usize::try_from(e.ulen)
            .map_err(|_| DataError::Format(format!("block {i} too large for this host")))?;

        // Zero-copy fast path: a raw-codec block in a mapped file decodes
        // straight from the page cache — checksum and f64 materialization
        // read the mapped bytes with no intermediate payload buffer.
        if e.codec == Codec::Raw {
            if let Some(stored) = self.backend.map_range(e.offset, clen) {
                let actual = fnv1a_words(stored);
                if actual != e.checksum {
                    return Err(DataError::ChecksumMismatch { expected: e.checksum, actual });
                }
                if stored.len() != ulen {
                    return Err(DataError::Format(format!(
                        "raw block {i} is {} bytes, index promises {ulen}",
                        stored.len()
                    )));
                }
                let ds = self.flat_to_dataset(codec::f64s_from_le(stored))?;
                let stats =
                    BlockReadStats { stored_bytes: e.clen, payload_bytes: e.ulen, zero_copy: true };
                return Ok((ds, stats));
            }
        }

        let stored = self.backend.read_range(e.offset, clen)?;
        let payload = codec::decode(e.codec, &stored, ulen)?;
        let actual = fnv1a_words(&payload);
        if actual != e.checksum {
            return Err(DataError::ChecksumMismatch { expected: e.checksum, actual });
        }
        let ds = self.flat_to_dataset(codec::f64s_from_le(&payload))?;
        let stats =
            BlockReadStats { stored_bytes: e.clen, payload_bytes: e.ulen, zero_copy: false };
        Ok((ds, stats))
    }

    fn flat_to_dataset(&self, flat: Vec<f64>) -> Result<Dataset> {
        Dataset::from_flat(self.dim, flat).map_err(|e| DataError::Format(e.to_string()))
    }

    /// Reads the whole container back into a [`GridBucket`].
    pub fn read_all(&self) -> Result<GridBucket> {
        let mut points = Dataset::with_capacity(self.dim, self.count)
            .map_err(|e| DataError::Format(e.to_string()))?;
        for i in 0..self.n_blocks() {
            let block = self.read_block(i)?;
            points.extend_from(&block).map_err(|e| DataError::Format(e.to_string()))?;
        }
        Ok(GridBucket { cell: self.cell, points })
    }
}

/// On-disk bucket container formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketFormat {
    /// Legacy single-blob format.
    Gb01,
    /// Block container.
    Gb02,
}

impl BucketFormat {
    /// Stable label for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            BucketFormat::Gb01 => "gb01",
            BucketFormat::Gb02 => "gb02",
        }
    }
}

/// Header-level facts about a bucket file, cheap to obtain for either
/// format (one small read; no payload access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketInfo {
    /// Which container format the file uses.
    pub format: BucketFormat,
    /// Cell id.
    pub cell: GridCell,
    /// Attributes per point.
    pub dim: usize,
    /// Total points promised by the header.
    pub count: usize,
}

/// Sniffs the magic and parses the header of either bucket format.
pub fn probe(path: &Path) -> Result<BucketInfo> {
    // Both formats carry magic(8) + cell(4) + dim(4) + count(8) in their
    // first 24 bytes; GB01's header is 32 bytes, GB02's is 32 too.
    debug_assert_eq!(HEADER_LEN, HEADER2_LEN);
    let mut header = [0u8; HEADER2_LEN];
    let mut f = File::open(path)?;
    f.read_exact(&mut header).map_err(|_| {
        DataError::Format(format!("file shorter than the {HEADER2_LEN}-byte bucket header"))
    })?;
    let mut h = &header[..];
    let mut magic = [0u8; 8];
    h.copy_to_slice(&mut magic);
    let format = if magic == MAGIC {
        BucketFormat::Gb01
    } else if magic == MAGIC2 {
        BucketFormat::Gb02
    } else {
        return Err(DataError::Format("bad magic; not a PMKM grid bucket".into()));
    };
    let cell = GridCell::from_index(h.get_u32_le())?;
    let dim = h.get_u32_le() as usize;
    let count = h.get_u64_le() as usize;
    if dim == 0 {
        return Err(DataError::Format("bucket declares zero dimensions".into()));
    }
    Ok(BucketInfo { format, cell, dim, count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FileBackend, MmapBackend, SimObjectStore};
    use std::sync::Arc;

    fn bucket(n: usize, dim: usize) -> GridBucket {
        let mut points = Dataset::new(dim).unwrap();
        for i in 0..n {
            let row: Vec<f64> = (0..dim).map(|d| 100.0 + (i as f64) * 0.001 + d as f64).collect();
            points.push(&row).unwrap();
        }
        GridBucket { cell: GridCell::new(40, 77).unwrap(), points }
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pmkm_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_tmp(name: &str, b: &GridBucket, codec: Codec, bp: usize) -> std::path::PathBuf {
        let path = tmpdir().join(format!("{name}-{}.gb2", std::process::id()));
        write_gb02(b, &path, codec, bp).unwrap();
        path
    }

    #[test]
    fn round_trips_across_codecs_backends_and_block_sizes() {
        for codec in Codec::ALL {
            for bp in [1, 7, 64, 1000] {
                let b = bucket(101, 3);
                let path = write_tmp(&format!("rt-{codec}-{bp}"), &b, codec, bp);
                for kind in BackendKind::ALL {
                    let r = Gb02Reader::open_path(&path, kind).unwrap();
                    assert_eq!(r.cell, b.cell);
                    assert_eq!(r.dim, 3);
                    assert_eq!(r.count, 101);
                    assert_eq!(r.default_codec, codec);
                    assert_eq!(r.n_blocks(), 101usize.div_ceil(bp));
                    let back = r.read_all().unwrap();
                    assert_eq!(back, b, "codec={codec} bp={bp} backend={kind}");
                }
                std::fs::remove_file(path).unwrap();
            }
        }
    }

    #[test]
    fn empty_bucket_round_trips() {
        let b = GridBucket { cell: GridCell::new(0, 0).unwrap(), points: Dataset::new(2).unwrap() };
        let path = write_tmp("empty", &b, Codec::ShuffleRle, 64);
        let r = Gb02Reader::open_path(&path, BackendKind::LocalFile).unwrap();
        assert_eq!(r.n_blocks(), 0);
        assert_eq!(r.count, 0);
        assert_eq!(r.read_all().unwrap(), b);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mmap_raw_blocks_are_zero_copy() {
        let b = bucket(200, 4);
        let path = write_tmp("zc", &b, Codec::Raw, 64);
        let r = Gb02Reader::open(Box::new(MmapBackend::open(&path).unwrap())).unwrap();
        let (_, stats) = r.read_block_with_stats(0).unwrap();
        assert!(stats.zero_copy);
        assert_eq!(stats.stored_bytes, stats.payload_bytes);
        // Compressed blocks and file backends never claim zero-copy.
        let path2 = write_tmp("zc2", &b, Codec::ShuffleRle, 64);
        let r2 = Gb02Reader::open(Box::new(MmapBackend::open(&path2).unwrap())).unwrap();
        assert!(!r2.read_block_with_stats(0).unwrap().1.zero_copy);
        let r3 = Gb02Reader::open(Box::new(FileBackend::open(&path).unwrap())).unwrap();
        assert!(!r3.read_block_with_stats(0).unwrap().1.zero_copy);
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(path2).unwrap();
    }

    #[test]
    fn shuffle_rle_shrinks_clustered_buckets() {
        let b = bucket(5000, 6);
        let (raw_bytes, _) = gb02_to_bytes(&b, Codec::Raw, 1024).unwrap();
        let (comp_bytes, stats) = gb02_to_bytes(&b, Codec::ShuffleRle, 1024).unwrap();
        assert!(
            comp_bytes.len() * 3 < raw_bytes.len() * 2,
            "expected ≥1.5x compression, got {} -> {}",
            raw_bytes.len(),
            comp_bytes.len()
        );
        assert!(stats.ratio() > 1.5);
    }

    #[test]
    fn sim_object_store_reads_with_latency_and_counts_gets() {
        let b = bucket(64, 3);
        let path = write_tmp("sim", &b, Codec::ShuffleRle, 16);
        let store = SimObjectStore::open(&path, 10).unwrap();
        let r = Gb02Reader::open(Box::new(store)).unwrap();
        assert_eq!(r.read_all().unwrap(), b);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sim_object_store_fault_surfaces_as_io_error() {
        let b = bucket(64, 3);
        let path = write_tmp("simfault", &b, Codec::Raw, 16);
        // Fail every GET after the metadata reads (footer, index, header).
        let store = SimObjectStore::open(&path, 0)
            .unwrap()
            .with_fault_hook(Arc::new(|ordinal| ordinal >= 3));
        let r = Gb02Reader::open(Box::new(store)).unwrap();
        assert!(matches!(r.read_block(0), Err(DataError::Io(_))));
        std::fs::remove_file(path).unwrap();
    }

    // ---- corruption matrix (satellite 3) ----

    fn corrupt<F: FnOnce(&mut Vec<u8>)>(name: &str, f: F) -> Result<GridBucket> {
        let b = bucket(100, 3);
        let (mut bytes, _) = gb02_to_bytes(&b, Codec::ShuffleRle, 32).unwrap();
        f(&mut bytes);
        let path = tmpdir().join(format!("corrupt-{name}-{}.gb2", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let out = Gb02Reader::open_path(&path, BackendKind::LocalFile).and_then(|r| r.read_all());
        std::fs::remove_file(path).unwrap();
        out
    }

    #[test]
    fn corruption_bad_header_magic() {
        let err = corrupt("magic", |b| b[0] = b'X').unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
    }

    #[test]
    fn corruption_truncated_index() {
        let err = corrupt("truncindex", |b| {
            let cut = b.len() - FOOTER_LEN - INDEX_ENTRY_LEN / 2;
            b.truncate(cut);
        })
        .unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
    }

    #[test]
    fn corruption_truncated_footer() {
        let err = corrupt("truncfoot", |b| {
            let cut = b.len() - 5;
            b.truncate(cut);
        })
        .unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
    }

    #[test]
    fn corruption_flipped_block_byte() {
        let err = corrupt("blockflip", |b| b[HEADER2_LEN + 3] ^= 0xFF).unwrap_err();
        // A flipped stored byte either breaks the RLE stream (Format) or
        // decodes to different bytes (ChecksumMismatch) — both clean.
        assert!(
            matches!(err, DataError::ChecksumMismatch { .. } | DataError::Format(_)),
            "{err:?}"
        );
    }

    #[test]
    fn corruption_flipped_block_checksum_in_index() {
        // Flip a checksum byte inside the index and re-seal the index
        // checksum so only the per-block integrity check can catch it.
        let err = corrupt("cksumflip", |b| {
            let total = b.len();
            let footer_at = total - FOOTER_LEN;
            let index_offset =
                u64::from_le_bytes(b[footer_at..footer_at + 8].try_into().unwrap()) as usize;
            // checksum is the 4th u64 of the first entry.
            b[index_offset + 24] ^= 0xFF;
            let new_ck = fnv1a(&b[index_offset..footer_at]);
            b[footer_at + 16..footer_at + 24].copy_from_slice(&new_ck.to_le_bytes());
        })
        .unwrap_err();
        assert!(matches!(err, DataError::ChecksumMismatch { .. }), "{err:?}");
    }

    #[test]
    fn corruption_index_tamper_without_reseal_is_caught() {
        let err = corrupt("indexflip", |b| {
            let footer_at = b.len() - FOOTER_LEN;
            b[footer_at - 10] ^= 0x01;
        })
        .unwrap_err();
        assert!(matches!(err, DataError::ChecksumMismatch { .. }), "{err:?}");
    }

    #[test]
    fn corruption_bogus_codec_id() {
        let err = corrupt("codec", |b| {
            let total = b.len();
            let footer_at = total - FOOTER_LEN;
            let index_offset =
                u64::from_le_bytes(b[footer_at..footer_at + 8].try_into().unwrap()) as usize;
            // codec is the last byte of the first 49-byte entry.
            b[index_offset + INDEX_ENTRY_LEN - 1] = 0xEE;
            let new_ck = fnv1a(&b[index_offset..footer_at]);
            b[footer_at + 16..footer_at + 24].copy_from_slice(&new_ck.to_le_bytes());
        })
        .unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
    }

    #[test]
    fn corruption_overlapping_block_ranges() {
        let err = corrupt("overlap", |b| {
            let total = b.len();
            let footer_at = total - FOOTER_LEN;
            let index_offset =
                u64::from_le_bytes(b[footer_at..footer_at + 8].try_into().unwrap()) as usize;
            // Pull block 1's offset back inside block 0.
            let e1 = index_offset + INDEX_ENTRY_LEN;
            let off = u64::from_le_bytes(b[e1..e1 + 8].try_into().unwrap());
            b[e1..e1 + 8].copy_from_slice(&(off - 8).to_le_bytes());
            let new_ck = fnv1a(&b[index_offset..footer_at]);
            b[footer_at + 16..footer_at + 24].copy_from_slice(&new_ck.to_le_bytes());
        })
        .unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
        let err = corrupt("overlap-points", |b| {
            let total = b.len();
            let footer_at = total - FOOTER_LEN;
            let index_offset =
                u64::from_le_bytes(b[footer_at..footer_at + 8].try_into().unwrap()) as usize;
            // Make block 1 claim to re-cover block 0's point range.
            let e1_start = index_offset + INDEX_ENTRY_LEN + 32;
            b[e1_start..e1_start + 8].copy_from_slice(&0u64.to_le_bytes());
            let new_ck = fnv1a(&b[index_offset..footer_at]);
            b[footer_at + 16..footer_at + 24].copy_from_slice(&new_ck.to_le_bytes());
        })
        .unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
    }

    #[test]
    fn corruption_gb01_magic_on_gb02_reader() {
        let err = corrupt("gb01magic", |b| b[..8].copy_from_slice(&MAGIC)).unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "{err:?}");
    }

    #[test]
    fn probe_reports_both_formats() {
        let b = bucket(42, 3);
        let dir = tmpdir();
        let p1 = dir.join(format!("probe1-{}.gb", std::process::id()));
        b.write_to(&p1).unwrap();
        let info = probe(&p1).unwrap();
        assert_eq!(info.format, BucketFormat::Gb01);
        assert_eq!(info.count, 42);
        assert_eq!(info.dim, 3);
        assert_eq!(info.cell, b.cell);

        let p2 = write_tmp("probe2", &b, Codec::ShuffleRle, 16);
        let info = probe(&p2).unwrap();
        assert_eq!(info.format, BucketFormat::Gb02);
        assert_eq!(info.count, 42);
        assert_eq!(info.cell, b.cell);

        std::fs::remove_file(p1).unwrap();
        std::fs::remove_file(p2).unwrap();
    }
}
