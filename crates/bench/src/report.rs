//! Experiment reporting: aligned text tables on stdout plus JSON dumps
//! under `target/experiments/` so EXPERIMENTS.md numbers are regenerable.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Prints an aligned table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() && cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i.min(widths.len() - 1)]));
        }
        out
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&hdr));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json`,
/// returning the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    println!("\n[written] {}", path.display());
    Ok(path)
}

/// Formats a millisecond value compactly.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

/// Formats a float with thousands grouping like the paper's tables.
pub fn grouped(v: f64) -> String {
    let neg = v < 0.0;
    // Round to one decimal first so the fractional digit is always 0..=9.
    let tenths = (v.abs() * 10.0).round() as u64;
    let whole = tenths / 10;
    let frac = tenths % 10;
    let mut s = whole.to_string();
    let mut out = String::new();
    while s.len() > 3 {
        let tail = s.split_off(s.len() - 3);
        out = format!(",{tail}{out}");
    }
    format!("{}{s}{out}.{frac}", if neg { "-" } else { "" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_formats_like_the_paper() {
        assert_eq!(grouped(1954614.0), "1,954,614.0");
        assert_eq!(grouped(105020.0), "105,020.0");
        assert_eq!(grouped(359.0), "359.0");
        assert_eq!(grouped(15680.25), "15,680.3");
        assert_eq!(grouped(-1234.5), "-1,234.5");
    }

    #[test]
    fn ms_switches_units() {
        assert_eq!(ms(12.34), "12.3ms");
        assert_eq!(ms(2345.0), "2.35s");
    }

    #[test]
    fn write_json_creates_file() {
        let path = write_json("selftest", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        std::fs::remove_file(path).unwrap();
    }
}
