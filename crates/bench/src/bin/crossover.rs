//! Finds the break-even cell size: "a data set has to have a minimum
//! number of data points for a partial/merge k-means being of advantage
//! (in our case with k=40, it was N = 500)" (§5.2) and "at N = 12,500,
//! partial/merge breaks even" on time+quality.
//!
//! The harness walks a geometric grid of N and reports, per N, whether
//! 10-split partial/merge beats serial on (a) overall time and (b) the
//! paper's error metric, then prints the smallest N where each advantage
//! first holds and persists.
//!
//! Usage: `… --bin crossover [--k=40] [--restarts=R] [--versions=V] [--seed=S]`.

use pmkm_bench::experiments::{run_serial, run_split, SweepConfig};
use pmkm_bench::report::{grouped, ms, print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct CrossRow {
    n: usize,
    serial_ms: f64,
    split_ms: f64,
    time_wins: bool,
    serial_err: f64,
    split_err: f64,
    error_wins: bool,
}

fn main() {
    let mut cfg = SweepConfig::from_args();
    if cfg.sizes == SweepConfig::quick().sizes {
        cfg.sizes = vec![125, 250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000];
    }
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        let mut serial_ms = 0.0;
        let mut split_ms = 0.0;
        let mut serial_err = 0.0;
        let mut split_err = 0.0;
        for version in 0..cfg.versions {
            eprintln!("[crossover] n={n} v={version}");
            let s = run_serial(&cfg, n, version);
            let p = run_split(&cfg, n, version, 10);
            serial_ms += s.overall_ms;
            split_ms += p.overall_ms;
            serial_err += s.min_mse;
            split_err += p.min_mse;
        }
        let m = cfg.versions as f64;
        rows.push(CrossRow {
            n,
            serial_ms: serial_ms / m,
            split_ms: split_ms / m,
            time_wins: split_ms < serial_ms,
            serial_err: serial_err / m,
            split_err: split_err / m,
            error_wins: split_err < serial_err,
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                ms(r.serial_ms),
                ms(r.split_ms),
                if r.time_wins { "✓" } else { "·" }.into(),
                grouped(r.serial_err),
                grouped(r.split_err),
                if r.error_wins { "✓" } else { "·" }.into(),
            ]
        })
        .collect();
    print_table(
        "§5.2 crossover — smallest N where 10-split partial/merge wins",
        &["N", "serial t", "10split t", "t win", "serial E", "10split E_pm", "E win"],
        &printable,
    );

    // Smallest N from which the advantage holds for every larger N tested.
    let persists_from = |pred: fn(&CrossRow) -> bool| -> Option<usize> {
        let mut from = None;
        for r in &rows {
            if pred(r) {
                from.get_or_insert(r.n);
            } else {
                from = None;
            }
        }
        from
    };
    match persists_from(|r| r.time_wins) {
        Some(n) => println!("\ntime advantage persists from N = {n} (paper: ~500)"),
        None => println!("\nno persistent time advantage in the tested range"),
    }
    match persists_from(|r| r.error_wins) {
        Some(n) => println!("error advantage persists from N = {n} (paper: ~12,500)"),
        None => println!("no persistent error advantage in the tested range"),
    }
    write_json("crossover", &rows).expect("write JSON");
}
