//! Ablation of the §6 future-work slicing strategies: random-overlap (the
//! paper's setup), salami (contiguous arrival order), and attribute-range
//! (disjoint data-space subcells).
//!
//! Two arrival scenarios are measured, because salami slicing only differs
//! from random when arrival order carries structure:
//! * `iid` — points arrive in random order (the paper's §3.1 assumption),
//! * `correlated` — points arrive sorted by attribute 0, emulating a
//!   stripe-wise scan that has not been shuffled.

use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{grouped, print_table, write_json};
use pmkm_core::{
    metrics, partial_merge, Dataset, PartialMergeConfig, PartitionSpec, PointSource, SliceStrategy,
};
use serde::Serialize;

#[derive(Serialize)]
struct SliceRow {
    n: usize,
    scenario: String,
    strategy: String,
    epm_mse: f64,
    data_mse: f64,
}

fn sort_by_attr0(ds: &Dataset) -> Dataset {
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    idx.sort_by(|&a, &b| {
        ds.coords(a)[0].partial_cmp(&ds.coords(b)[0]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = Dataset::with_capacity(ds.dim(), ds.len()).unwrap();
    for i in idx {
        out.push(ds.coords(i)).unwrap();
    }
    out
}

fn main() {
    let cfg = SweepConfig::from_args();
    let strategies = [
        (SliceStrategy::RandomOverlap, "random-overlap"),
        (SliceStrategy::Salami, "salami"),
        (SliceStrategy::AttributeRange { dim: 0 }, "attr-range"),
    ];
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        for version in 0..cfg.versions {
            let iid = cfg.cell(n, version);
            let correlated = sort_by_attr0(&iid);
            for (scenario, cell) in [("iid", &iid), ("correlated", &correlated)] {
                for (strategy, label) in strategies {
                    eprintln!("[slicing] n={n} v={version} {scenario} {label}");
                    let pm = PartialMergeConfig {
                        kmeans: cfg.kmeans_for(n, version),
                        partitions: PartitionSpec::Count(10),
                        merge_mode: pmkm_core::MergeMode::Collective,
                        merge_restarts: 1,
                        slicing: strategy,
                    };
                    let out = partial_merge(cell, &pm).expect("slicing case");
                    let data_mse = metrics::mse_against(cell, &out.merge.centroids).expect("eval");
                    rows.push(SliceRow {
                        n,
                        scenario: scenario.into(),
                        strategy: label.into(),
                        epm_mse: out.merge.mse,
                        data_mse,
                    });
                }
            }
        }
    }

    let mut printable = Vec::new();
    let mut sizes = cfg.sizes.clone();
    sizes.sort_unstable();
    for &n in &sizes {
        for scenario in ["iid", "correlated"] {
            for (_, label) in strategies {
                let group: Vec<&SliceRow> = rows
                    .iter()
                    .filter(|r| r.n == n && r.scenario == scenario && r.strategy == label)
                    .collect();
                if group.is_empty() {
                    continue;
                }
                let m = group.len() as f64;
                printable.push(vec![
                    n.to_string(),
                    scenario.to_string(),
                    label.to_string(),
                    grouped(group.iter().map(|r| r.epm_mse).sum::<f64>() / m),
                    grouped(group.iter().map(|r| r.data_mse).sum::<f64>() / m),
                ]);
            }
        }
    }
    print_table(
        "§6 slicing-strategy ablation (10-split)",
        &["N", "arrival", "strategy", "E_pm MSE", "data MSE"],
        &printable,
    );
    write_json("slicing", &rows).expect("write JSON");
}
