//! Regenerates **Figure 8**: partial k-means processing time, 5-split vs
//! 10-split, as a function of N (the partial phase only — `t C0−Ci`).
//!
//! Pass `--reuse` to re-plot from `table2_rows.json`.

use pmkm_bench::experiments::{load_or_run_sweep, mean_rows, SweepConfig};
use pmkm_bench::report::{ms, print_table, write_json};

fn main() {
    let cfg = SweepConfig::from_args();
    let rows = load_or_run_sweep(&cfg);
    let means = mean_rows(&rows);

    let mut sizes: Vec<usize> = means.iter().map(|m| m.n).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut printable = Vec::new();
    for &n in &sizes {
        let get = |algo: &str| {
            means
                .iter()
                .find(|m| m.n == n && m.algo == algo)
                .map(|m| ms(m.partial_ms))
                .unwrap_or_else(|| "–".into())
        };
        printable.push(vec![n.to_string(), get("5split"), get("10split")]);
    }
    print_table(
        "Figure 8 — partial k-means processing time, 5-split vs 10-split",
        &["N", "chunk=5", "chunk=10"],
        &printable,
    );

    let series: Vec<(String, Vec<(usize, f64)>)> = ["5split", "10split"]
        .iter()
        .map(|algo| {
            (
                algo.to_string(),
                sizes
                    .iter()
                    .filter_map(|&n| {
                        means
                            .iter()
                            .find(|m| m.n == n && m.algo == *algo)
                            .map(|m| (n, m.partial_ms))
                    })
                    .collect(),
            )
        })
        .collect();
    write_json("fig8_split_series", &series).expect("write JSON");
}
