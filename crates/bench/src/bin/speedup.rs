//! Regenerates the §5.2 speed-up experiment: partial k-means operators
//! cloned across "machines" (worker threads), for one large cell.
//!
//! Two execution substrates are measured:
//! * the in-memory worker pool (`partial_merge_with_workers`),
//! * the full stream engine (scan → chunker → cloned partials → merge)
//!   over an on-disk grid bucket.
//!
//! Usage: `… --bin speedup [--full] [--sizes=N] [--restarts=R] [--seed=S]`
//! (the first entry of `--sizes` is the cell size; default 50,000).

use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{ms, print_table, write_json};
use pmkm_core::{partial_merge_with_workers, MergeMode, PartialMergeConfig, PartitionSpec};
use pmkm_data::{GridBucket, GridCell};
use pmkm_stream::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct SpeedupRow {
    workers: usize,
    pool_ms: f64,
    pool_speedup: f64,
    engine_ms: f64,
    engine_speedup: f64,
}

fn main() {
    let mut cfg = SweepConfig::from_args();
    if cfg.sizes == SweepConfig::quick().sizes {
        cfg.sizes = vec![50_000];
    }
    let n = cfg.sizes[0];
    let splits = 16usize; // enough chunks to keep 8 workers busy
    eprintln!("[speedup] n={n}, splits={splits}, restarts={}", cfg.restarts);

    let cell = cfg.cell(n, 0);
    let kcfg = cfg.kmeans_for(n, 0);
    let pm = PartialMergeConfig {
        kmeans: kcfg,
        partitions: PartitionSpec::Count(splits),
        merge_mode: MergeMode::Collective,
        merge_restarts: 1,
        slicing: pmkm_core::SliceStrategy::RandomOverlap,
    };

    // On-disk bucket for the engine runs.
    let dir = std::env::temp_dir().join(format!("pmkm_speedup_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cell_id = GridCell::new(90, 180).expect("valid cell");
    let bucket_path = dir.join(cell_id.bucket_file_name());
    GridBucket { cell: cell_id, points: cell.clone() }
        .write_to(&bucket_path)
        .expect("write bucket");
    let points_per_chunk = n.div_ceil(splits);

    let worker_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut base_pool = 0.0;
    let mut base_engine = 0.0;
    for &w in &worker_counts {
        let res = partial_merge_with_workers(&cell, &pm, w).expect("pool run");
        let pool_ms = res.total_elapsed.as_secs_f64() * 1e3;

        let logical = LogicalPlan::new(vec![bucket_path.clone()], kcfg);
        let plan = optimize_fixed_split(logical, &Resources::fixed(64 << 20, w), points_per_chunk);
        let report = execute(&plan).expect("engine run");
        let engine_ms = report.elapsed.as_secs_f64() * 1e3;

        if w == 1 {
            base_pool = pool_ms;
            base_engine = engine_ms;
        }
        rows.push(SpeedupRow {
            workers: w,
            pool_ms,
            pool_speedup: base_pool / pool_ms,
            engine_ms,
            engine_speedup: base_engine / engine_ms,
        });
        eprintln!("[speedup] workers={w} pool={pool_ms:.0}ms engine={engine_ms:.0}ms");
    }

    // One extra observed run at the widest clone count, outside the timed
    // loop, leaves a structured RunReport behind (per-clone busy/blocked
    // split, queue-depth histograms) without perturbing the measurements.
    let w = *worker_counts.last().unwrap();
    let plan = optimize_fixed_split(
        LogicalPlan::new(vec![bucket_path.clone()], kcfg),
        &Resources::fixed(64 << 20, w),
        points_per_chunk,
    );
    let rec = std::sync::Arc::new(pmkm_obs::Recorder::new());
    let observed = pmkm_stream::execute_observed(&plan, Some(rec.clone())).expect("observed run");
    write_json("speedup_run_report", &observed.run_report(Some(&rec))).expect("write run report");
    std::fs::remove_dir_all(&dir).ok();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                ms(r.pool_ms),
                format!("{:.2}x", r.pool_speedup),
                ms(r.engine_ms),
                format!("{:.2}x", r.engine_speedup),
            ]
        })
        .collect();
    print_table(
        &format!("§5.2 speed-up — N = {n}, {splits} chunks, partial operator cloned"),
        &["workers", "pool time", "pool speedup", "engine time", "engine speedup"],
        &printable,
    );
    write_json("speedup", &rows).expect("write JSON");
}
