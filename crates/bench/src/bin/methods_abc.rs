//! Regenerates the **Figure 2** comparison: the three classical ways of
//! parallelizing k-means (Method A: cell per processor; Method B: restart
//! per processor; Method C: distributed k-means with message passing),
//! with Method C's communication overhead made explicit.
//!
//! Usage: `… --bin methods_abc [--sizes=N] [--k=K] [--restarts=R]`
//! (the first entry of `--sizes` is the per-cell size; default 10,000).

use pmkm_baselines::{method_a, method_b, method_c};
use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{ms, print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct MethodRow {
    method: String,
    workers: usize,
    time_ms: f64,
    speedup: f64,
    min_mse: f64,
    messages: usize,
}

fn main() {
    let mut cfg = SweepConfig::from_args();
    if cfg.sizes == SweepConfig::quick().sizes {
        cfg.sizes = vec![10_000];
    }
    let n = cfg.sizes[0];
    let cells: Vec<_> = (0..4).map(|v| cfg.cell(n, v)).collect();
    let kcfg = cfg.kmeans_for(n, 0);
    eprintln!("[methods] {} cells of n={n}, k={}, R={}", cells.len(), cfg.k, cfg.restarts);

    let mut rows: Vec<MethodRow> = Vec::new();
    let workers = [1usize, 2, 4];

    // Method A: G cells fanned over processors.
    let mut base = 0.0;
    for &w in &workers {
        let out = method_a(&cells, &kcfg, w).expect("method A");
        let t = out.elapsed.as_secs_f64() * 1e3;
        if w == 1 {
            base = t;
        }
        let mse = out.cells.iter().map(|c| c.best.mse).sum::<f64>() / out.cells.len() as f64;
        rows.push(MethodRow {
            method: "A (cell/proc)".into(),
            workers: w,
            time_ms: t,
            speedup: base / t,
            min_mse: mse,
            messages: 0,
        });
    }

    // Method B: restarts of one cell fanned over processors.
    let mut base = 0.0;
    for &w in &workers {
        let out = method_b(&cells[0], &kcfg, w).expect("method B");
        let t = out.elapsed.as_secs_f64() * 1e3;
        if w == 1 {
            base = t;
        }
        rows.push(MethodRow {
            method: "B (restart/proc)".into(),
            workers: w,
            time_ms: t,
            speedup: base / t,
            min_mse: out.best.mse,
            messages: 0,
        });
    }

    // Method C: one cell distributed over slaves (single restart — the
    // distribution is within one Lloyd run).
    let c_cfg = pmkm_core::KMeansConfig { restarts: 1, ..kcfg };
    let mut base = 0.0;
    for &w in &workers {
        let out = method_c(&cells[0], &c_cfg, w).expect("method C");
        let t = out.elapsed.as_secs_f64() * 1e3;
        if w == 1 {
            base = t;
        }
        rows.push(MethodRow {
            method: "C (distributed)".into(),
            workers: w,
            time_ms: t,
            speedup: base / t,
            min_mse: out.mse,
            messages: out.messages,
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                r.workers.to_string(),
                ms(r.time_ms),
                format!("{:.2}x", r.speedup),
                format!("{:.1}", r.min_mse),
                r.messages.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 2 — parallelization methods A/B/C (N = {n} per cell)"),
        &["method", "workers", "time", "speedup", "min MSE", "messages"],
        &printable,
    );
    write_json("methods_abc", &rows).expect("write JSON");
}
