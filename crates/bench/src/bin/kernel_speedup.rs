//! Records the fused-kernel acceptance number for PR 2: assignment-step
//! speedup over the naive scalar search on the paper's 6-D fig. 6 workload
//! (MISR-like cells, k = 40), plus end-to-end bounded-Lloyd timings for
//! every selectable [`KernelKind`].
//!
//! Writes `BENCH_kernels.json` at the repository root (median-of-reps
//! timings, speedups, and the fused kernel's rescue rate) and exits
//! non-zero if the fused assignment step is not ≥ 1.5× the scalar one.

use pmkm_bench::report::print_table;
use pmkm_core::kernel::FusedLayout;
use pmkm_core::point::nearest_centroid;
use pmkm_core::seeding::{rng_for, seed_centroids};
use pmkm_core::{lloyd, Dataset, KernelKind, KernelStats, LloydConfig, PointSource, SeedMode};
use pmkm_data::CellConfig;
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

const K: usize = 40;
const REPS: usize = 9;

#[derive(Serialize)]
struct AssignRow {
    n: usize,
    scalar_ms: f64,
    fused_ms: f64,
    speedup: f64,
    rescues_per_point: f64,
}

#[derive(Serialize)]
struct LloydRow {
    kernel: &'static str,
    n: usize,
    iters: usize,
    ms: f64,
    speedup_vs_scalar: f64,
}

#[derive(Serialize)]
struct Report {
    workload: &'static str,
    dim: usize,
    k: usize,
    reps: usize,
    assign: Vec<AssignRow>,
    lloyd_5iters: Vec<LloydRow>,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Median wall time of `f` over [`REPS`] runs, in milliseconds.
fn time_ms<F: FnMut() -> f64>(mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(REPS);
    let mut sink = 0.0;
    for _ in 0..REPS {
        let t = Instant::now();
        sink += f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    assert!(sink.is_finite());
    median(samples)
}

fn main() {
    let mut assign = Vec::new();
    let mut lloyd_rows = Vec::new();
    let mut worst_speedup = f64::INFINITY;

    for &n in &[10_000usize, 50_000] {
        let cell: Dataset =
            pmkm_data::generator::generate_cell(&CellConfig::paper(n, 42)).expect("generator");
        let dim = cell.dim();
        let init = seed_centroids(&cell, K, SeedMode::RandomPoints, &mut rng_for(7, 0)).unwrap();
        let cents = init.as_flat().to_vec();

        let scalar_ms = time_ms(|| {
            let mut acc = 0.0;
            for i in 0..cell.len() {
                acc += nearest_centroid(cell.coords(i), &cents, dim).1;
            }
            acc
        });
        let mut stats = KernelStats::default();
        let fused_ms = time_ms(|| {
            let layout = FusedLayout::new(&cents, dim);
            let mut scratch = vec![0.0; layout.scratch_len()];
            let mut acc = 0.0;
            for i in 0..cell.len() {
                acc += layout.nearest_counted(cell.coords(i), &mut scratch, &mut stats).1;
            }
            acc
        });

        let speedup = scalar_ms / fused_ms;
        worst_speedup = worst_speedup.min(speedup);
        assign.push(AssignRow {
            n,
            scalar_ms,
            fused_ms,
            speedup,
            rescues_per_point: stats.rescues_per_point(),
        });

        if n == 10_000 {
            let mut scalar_lloyd = 0.0;
            for kernel in [KernelKind::Scalar, KernelKind::Fused] {
                let cfg =
                    LloydConfig { max_iters: 5, epsilon: 0.0, kernel, ..LloydConfig::default() };
                let mut iters = 0;
                let ms = time_ms(|| {
                    let run = lloyd::lloyd(&cell, &init, &cfg).unwrap();
                    iters = run.iterations;
                    run.mse
                });
                if kernel == KernelKind::Scalar {
                    scalar_lloyd = ms;
                }
                lloyd_rows.push(LloydRow {
                    kernel: kernel.label(),
                    n,
                    iters,
                    ms,
                    speedup_vs_scalar: scalar_lloyd / ms,
                });
            }
        }
    }

    print_table(
        "Fused kernel vs scalar — assignment step (6-D, k=40, median of 9)",
        &["N", "scalar ms", "fused ms", "speedup", "rescues/pt"],
        &assign
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{:.2}", r.scalar_ms),
                    format!("{:.2}", r.fused_ms),
                    format!("{:.2}x", r.speedup),
                    format!("{:.3}", r.rescues_per_point),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Bounded Lloyd (5 iters, k=40, N=10k) per kernel",
        &["kernel", "ms", "vs scalar"],
        &lloyd_rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.to_string(),
                    format!("{:.2}", r.ms),
                    format!("{:.2}x", r.speedup_vs_scalar),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let report = Report {
        workload: "fig6 paper cells (6-D MISR-like, CellConfig::paper(n, 42))",
        dim: 6,
        k: K,
        reps: REPS,
        assign,
        lloyd_5iters: lloyd_rows,
    };
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_kernels.json");
    f.write_all(serde_json::to_string_pretty(&report).expect("serialize").as_bytes()).unwrap();
    f.write_all(b"\n").unwrap();
    println!("\n[written] {}", path.display());

    if worst_speedup < 1.5 {
        eprintln!("FAIL: fused assignment speedup {worst_speedup:.2}x < 1.5x acceptance bar");
        std::process::exit(1);
    }
    println!("OK: fused assignment speedup ≥ 1.5x (worst {worst_speedup:.2}x)");
}
