//! Ablation of the §3.3 ECVQ remark: fixed-k partial k-means vs
//! entropy-constrained VQ as the partial step, across a λ sweep. ECVQ
//! finds "an optimal k for a partition on the fly"; this harness shows the
//! rate/quality trade-off it buys (fewer transmitted centroids vs merged
//! quality).

use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{grouped, print_table, write_json};
use pmkm_core::ecvq::EcvqConfig;
use pmkm_core::{metrics, partial_merge, partial_merge_ecvq};
use serde::Serialize;

#[derive(Serialize)]
struct EcvqRow {
    n: usize,
    arm: String,
    transmitted_centroids: usize,
    data_mse: f64,
    epm_mse: f64,
}

fn main() {
    let cfg = SweepConfig::from_args();
    let splits = 10usize;
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        for version in 0..cfg.versions {
            let cell = cfg.cell(n, version);
            let mut pm = pmkm_core::PartialMergeConfig {
                kmeans: cfg.kmeans_for(n, version),
                partitions: pmkm_core::PartitionSpec::Count(splits),
                ..pmkm_core::PartialMergeConfig::paper(cfg.k, splits, 0)
            };
            pm.merge_restarts = 3;

            eprintln!("[ablation_ecvq] n={n} v={version} fixed-k");
            let fixed = partial_merge(&cell, &pm).expect("fixed-k arm");
            rows.push(EcvqRow {
                n,
                arm: "fixed-k".into(),
                transmitted_centroids: fixed.merge.input_centroids,
                data_mse: metrics::mse_against(&cell, &fixed.merge.centroids).expect("eval"),
                epm_mse: fixed.merge.mse,
            });

            for lambda in [10.0f64, 100.0, 1000.0] {
                eprintln!("[ablation_ecvq] n={n} v={version} ecvq λ={lambda}");
                let ecfg = EcvqConfig {
                    max_k: cfg.k,
                    lambda,
                    seed: pm.kmeans.seed,
                    ..EcvqConfig::default()
                };
                let out = partial_merge_ecvq(&cell, &pm, &ecfg).expect("ecvq arm");
                rows.push(EcvqRow {
                    n,
                    arm: format!("ecvq λ={lambda}"),
                    transmitted_centroids: out.merge.input_centroids,
                    data_mse: metrics::mse_against(&cell, &out.merge.centroids).expect("eval"),
                    epm_mse: out.merge.mse,
                });
            }
        }
    }

    let mut printable = Vec::new();
    let mut sizes = cfg.sizes.clone();
    sizes.sort_unstable();
    let arms = ["fixed-k", "ecvq λ=10", "ecvq λ=100", "ecvq λ=1000"];
    for &n in &sizes {
        for arm in arms {
            let group: Vec<&EcvqRow> = rows.iter().filter(|r| r.n == n && r.arm == arm).collect();
            if group.is_empty() {
                continue;
            }
            let m = group.len() as f64;
            printable.push(vec![
                n.to_string(),
                arm.to_string(),
                format!(
                    "{:.0}",
                    group.iter().map(|r| r.transmitted_centroids as f64).sum::<f64>() / m
                ),
                grouped(group.iter().map(|r| r.epm_mse).sum::<f64>() / m),
                grouped(group.iter().map(|r| r.data_mse).sum::<f64>() / m),
            ]);
        }
    }
    print_table(
        "§3.3 ECVQ ablation — fixed-k vs adaptive-k partial step (10-split)",
        &["N", "partial step", "sent centroids", "E_pm MSE", "data MSE"],
        &printable,
    );
    write_json("ablation_ecvq", &rows).expect("write JSON");
}
