//! Continuous perf-regression harness for the end-to-end partial/merge
//! pipeline (PR 3 acceptance artifact).
//!
//! Runs the fig. 6-style workload (one MISR-like 6-D cell, k = 40) through
//! every {serial, N-clone} × {scalar, fused}
//! configuration of the in-process `partial_merge` path, plus the full
//! stream engine (`execute_observed` over an on-disk bucket, scalar and
//! fused kernels), the multi-cell orchestrator (8 cells, 1 vs 4
//! work-stealing workers), and scan-only storage rows (GB01 buffered vs
//! the GB02 block container across every backend × codec, with a smoke
//! gate asserting the mmap zero-copy scan beats the buffered reader),
//! recording throughput (points/s), per-phase wall times, `E_pm`, and the
//! span profiler's phase breakdown + measured overhead into
//! `BENCH_pipeline.json` at the repository root.
//!
//! Measurement methodology: every configuration gets one untimed warmup
//! run, then `reps` timed unprofiled/profiled run PAIRS, interleaved; each
//! arm reports its median and the profiler overhead is the ratio of the
//! two medians. Warming both arms identically and interleaving them is
//! what makes the overhead number meaningful — a cold first sample in only
//! one arm (or clock/load drift across two sequential arms) used to skew
//! it negative.
//!
//! Flags:
//! - `--quick`            small workload for CI smoke tests
//! - `--out PATH`         write the report somewhere else
//! - `--baseline PATH`    compare against a previous report; exits 1 if any
//!   configuration's throughput regressed by more than 10% (printing a
//!   per-phase attribution of where the regression's time went), 2 if the
//!   baseline's workload parameters don't match
//! - `--ledger PATH`      journal the profiled stream-engine run (fused
//!   kernel) as an append-only JSONL run ledger, diffable with `pmkm diff`
//! - `--simulate-regression FRAC`  scale measured throughput down by FRAC
//!   (e.g. 0.5 halves it) — lets CI prove the regression gate fires

use pmkm_bench::report::print_table;
use pmkm_core::{
    partial_merge, partial_merge_observed, partial_merge_with_workers, Dataset, KMeansConfig,
    KernelKind, PartialMergeConfig, PartitionSpec,
};
use pmkm_data::{CellConfig, GridBucket, GridCell};
use pmkm_obs::{PhaseReport, Profiler, Recorder, Timeline};
use pmkm_stream::{execute, execute_observed, optimize_fixed_split, LogicalPlan, Resources};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

const SCHEMA_VERSION: u32 = 4;
const SEED: u64 = 42;
const K: usize = 40;
const PARTITIONS: usize = 10;
const CLONES: usize = 4;
/// A configuration fails the gate when its throughput drops below this
/// fraction of the baseline's.
const REGRESSION_FLOOR: f64 = 0.90;

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Params {
    n: usize,
    dim: usize,
    k: usize,
    partitions: usize,
    restarts: usize,
    reps: usize,
    seed: u64,
}

#[derive(Serialize, Deserialize, Debug, Clone)]
struct Row {
    /// `workers/kernel`, e.g. `serial/scalar` or `clones4/fused`.
    config: String,
    workers: usize,
    kernel: String,
    total_ms: f64,
    partial_ms: f64,
    merge_ms: f64,
    points_per_sec: f64,
    epm: f64,
    /// Extra wall time of the profiled median over the unprofiled median,
    /// in percent. The arms share one untimed warmup and run as `reps`
    /// interleaved pairs, so the comparison is warm-vs-warm and drift-free
    /// (still noisy on small workloads; the zero-cost-when-off guarantee
    /// is pinned by tests, not by this number).
    profiler_overhead_pct: f64,
    phases: Vec<PhaseReport>,
}

#[derive(Serialize, Deserialize, Debug, Clone)]
struct Report {
    schema_version: u32,
    workload: String,
    /// Machine-class fingerprint (cpu model + core count). Baselines only
    /// gate against reports from the same class; empty in pre-v4 documents.
    #[serde(default)]
    machine: String,
    params: Params,
    rows: Vec<Row>,
}

/// The machine-class key for baseline lookups: normalized CPU model name
/// plus logical core count. Throughput numbers travel poorly across
/// hardware, so the regression gate only fires within one class.
fn machine_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|l| {
                let (k, v) = l.split_once(':')?;
                (k.trim() == "model name").then(|| v.trim().to_string())
            })
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string());
    format!("{}/{}x", model.split_whitespace().collect::<Vec<_>>().join(" "), cores)
}

struct Opts {
    quick: bool,
    out: Option<String>,
    baseline: Option<String>,
    ledger: Option<String>,
    simulate_regression: f64,
}

fn parse_opts() -> Opts {
    let mut opts =
        Opts { quick: false, out: None, baseline: None, ledger: None, simulate_regression: 0.0 };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take = |key: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{key}=")) {
                return Some(v.to_string());
            }
            if arg == key {
                i += 1;
                return Some(args.get(i).unwrap_or_else(|| usage(key)).clone());
            }
            None
        };
        if arg == "--quick" {
            opts.quick = true;
        } else if let Some(v) = take("--out") {
            opts.out = Some(v);
        } else if let Some(v) = take("--baseline") {
            opts.baseline = Some(v);
        } else if let Some(v) = take("--ledger") {
            opts.ledger = Some(v);
        } else if let Some(v) = take("--simulate-regression") {
            opts.simulate_regression = v.parse().unwrap_or_else(|_| usage("--simulate-regression"));
        } else {
            usage(arg);
        }
        i += 1;
    }
    opts
}

fn usage(offender: &str) -> ! {
    eprintln!(
        "pipeline_bench: bad argument near '{offender}'\n\
         usage: pipeline_bench [--quick] [--out PATH] [--baseline PATH] \
         [--ledger PATH] [--simulate-regression FRAC]"
    );
    std::process::exit(2)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn bench_config(cell: &Dataset, params: &Params, workers: usize, kernel: KernelKind) -> Row {
    let mut cfg = PartialMergeConfig {
        kmeans: KMeansConfig {
            restarts: params.restarts,
            ..KMeansConfig::paper(params.k, params.seed)
        },
        partitions: PartitionSpec::Count(params.partitions),
        ..PartialMergeConfig::paper(params.k, params.partitions, params.seed)
    };
    cfg.kmeans.lloyd.kernel = kernel;

    let run = || {
        if workers == 0 {
            partial_merge(cell, &cfg)
        } else {
            partial_merge_with_workers(cell, &cfg, workers)
        }
        .expect("pipeline run")
    };
    // One untimed warmup, then `reps` INTERLEAVED unprofiled/profiled
    // pairs, each arm reporting its median (see the module doc). Each
    // profiled rep gets a fresh recorder so the reported phases are
    // per-run, not a sum over reps; the last rep's breakdown is kept.
    let res = run();
    let mut samples = Vec::with_capacity(params.reps);
    let mut profiled_samples = Vec::with_capacity(params.reps);
    let mut last = None;
    for _ in 0..params.reps {
        let t = Instant::now();
        run();
        samples.push(t.elapsed().as_secs_f64() * 1e3);

        let rec = Recorder::new().with_profiler(Arc::new(Profiler::new()));
        let t = Instant::now();
        let (p, _report) =
            partial_merge_observed(cell, &cfg, (workers > 0).then_some(workers), Some(&rec))
                .expect("profiled pipeline run");
        profiled_samples.push(t.elapsed().as_secs_f64() * 1e3);
        last = Some((p, rec));
    }
    let total_ms = median(samples);
    let profiled_ms = median(profiled_samples);
    let (profiled, rec) = last.expect("reps >= 1");
    assert_eq!(
        profiled.merge.centroids, res.merge.centroids,
        "profiling must not change results ({workers} workers, {kernel:?})"
    );

    let label = if workers == 0 { "serial".to_string() } else { format!("clones{workers}") };
    Row {
        config: format!("{label}/{}", kernel.label()),
        workers,
        kernel: kernel.label().to_string(),
        total_ms,
        partial_ms: res.partial_elapsed.as_secs_f64() * 1e3,
        merge_ms: res.merge.elapsed.as_secs_f64() * 1e3,
        points_per_sec: params.n as f64 / (total_ms / 1e3),
        epm: res.merge.epm,
        profiler_overhead_pct: (profiled_ms - total_ms) / total_ms * 100.0,
        phases: rec.phase_rows(),
    }
}

/// Benchmarks the full stream engine — scan from an on-disk bucket through
/// chunker, cloned partial workers, and merge — via `execute_observed`.
/// Chunk boundaries differ from `partial_merge`'s partitioning, so these
/// rows carry their own `E_pm` and are excluded from the cross-config
/// equality check.
fn bench_stream(
    cell: &Dataset,
    params: &Params,
    workers: usize,
    kernel: KernelKind,
    ledger: Option<Arc<pmkm_obs::LedgerSink>>,
    coreset: Option<usize>,
) -> Row {
    let dir = std::env::temp_dir().join(format!("pmkm_pipeline_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let gcell = GridCell::new(0, 0).expect("grid cell");
    let path = dir.join(gcell.bucket_file_name());
    GridBucket { cell: gcell, points: cell.clone() }.write_to(&path).expect("write bucket");

    let mut kmeans =
        KMeansConfig { restarts: params.restarts, ..KMeansConfig::paper(params.k, params.seed) };
    kmeans.lloyd.kernel = kernel;
    let logical = LogicalPlan::new(vec![path.clone()], kmeans);
    let mut plan = optimize_fixed_split(
        logical,
        &Resources::fixed(1 << 30, workers),
        params.n.div_ceil(params.partitions),
    );
    plan.coreset = coreset.map(pmkm_stream::CoresetSpec::new);

    // Warm once, then `reps` interleaved unprofiled/profiled pairs with a
    // median per arm (see the module doc). Fresh recorder per profiled rep
    // (per-run phases); only the last rep journals to the ledger, so the
    // JSONL stays a single-run record.
    let report = execute(&plan).expect("stream engine warmup");
    assert_eq!(report.cells.len(), 1, "one bucket in, one clustering out");
    assert!(!report.degraded, "fault-free bench run must not be degraded");
    let mut samples = Vec::with_capacity(params.reps);
    let mut profiled_samples = Vec::with_capacity(params.reps);
    let mut last = None;
    for rep in 0..params.reps {
        let t = Instant::now();
        execute(&plan).expect("stream engine run");
        samples.push(t.elapsed().as_secs_f64() * 1e3);

        let mut rec = Recorder::new().with_profiler(Arc::new(Profiler::new()));
        if rep + 1 == params.reps {
            if let Some(sink) = ledger.clone() {
                rec = rec.with_sink(sink);
            }
        }
        let rec = Arc::new(rec);
        let t = Instant::now();
        let obs = execute_observed(&plan, Some(Arc::clone(&rec))).expect("observed engine run");
        profiled_samples.push(t.elapsed().as_secs_f64() * 1e3);
        last = Some((obs, rec));
    }
    let total_ms = median(samples);
    let profiled_ms = median(profiled_samples);
    let (observed, rec) = last.expect("reps >= 1");
    assert_eq!(
        observed.cells[0].output.centroids, report.cells[0].output.centroids,
        "observation must not change stream-engine results ({workers} workers, {kernel:?})"
    );

    if coreset.is_some() {
        let stats = report.cells[0].coreset.expect("coreset stats on a coreset bench run");
        assert!(
            stats.live_buckets as u32 <= (stats.builds as usize).ilog2() + 1,
            "coreset memory bound violated at bench scale: {stats:?}"
        );
    }

    let phases = rec.phase_rows();
    let phase_ms = |name: &str| {
        phases.iter().find(|p| p.path == name).map_or(0.0, |p| p.total_us as f64 / 1e3)
    };
    let _ = std::fs::remove_file(&path);
    let family = if coreset.is_some() { "coreset" } else { "stream" };
    Row {
        config: format!("{family}{workers}/{}", kernel.label()),
        workers,
        kernel: kernel.label().to_string(),
        total_ms,
        // In coreset mode the per-chunk work is the coreset build (phase
        // "coreset"), not partial k-means.
        partial_ms: phase_ms("partial") + phase_ms("coreset"),
        merge_ms: phase_ms("merge"),
        points_per_sec: params.n as f64 / (total_ms / 1e3),
        epm: report.cells[0].output.epm,
        profiler_overhead_pct: (profiled_ms - total_ms) / total_ms * 100.0,
        phases,
    }
}

/// Scan-only rows: drain the fig6 bucket through the GB01 buffered reader
/// and through the GB02 block container across every backend × codec
/// combination. Each timed sample scans the file several times (more on
/// the `--quick` workload) so per-pass open cost stays measurable above
/// timer noise; rows report the median, while the mmap-vs-buffered smoke
/// below compares best-of-reps, the robust "how fast can this go"
/// estimator.
///
/// Smoke gate: the mmap backend's raw-codec (zero-copy) scan must be at
/// least as fast as the GB01 buffered reader — the container's reason to
/// exist on scan-bound workloads.
fn bench_scan(cell: &Dataset, params: &Params) -> Vec<Row> {
    use pmkm_data::{BackendKind, BucketReader, Codec, Gb02Reader};
    const SCAN_REPS: usize = 9;
    let dir = std::env::temp_dir().join(format!("pmkm_scan_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scan bench dir");
    let gcell = GridCell::new(3, 3).expect("grid cell");
    let bucket = GridBucket { cell: gcell, points: cell.clone() };
    let gb01 = dir.join("scan.gb");
    bucket.write_to(&gb01).expect("write gb01 scan bucket");
    let n = params.n;
    let flat_len = n * params.dim;
    let passes = (2_000_000 / n.max(1)).clamp(1, 64);

    // Returns (median_ms, best_ms) per single pass.
    let time_scan = |f: &mut dyn FnMut() -> usize| -> (f64, f64) {
        assert_eq!(f(), flat_len, "scan must drain the whole bucket");
        let mut samples = Vec::with_capacity(SCAN_REPS);
        for _ in 0..SCAN_REPS {
            let t = Instant::now();
            for _ in 0..passes {
                f();
            }
            samples.push(t.elapsed().as_secs_f64() * 1e3 / passes as f64);
        }
        let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        (median(samples), best)
    };
    let scan_row = |config: String, ms: f64| Row {
        config,
        workers: 1,
        kernel: "scan".to_string(),
        total_ms: ms,
        partial_ms: 0.0,
        merge_ms: 0.0,
        points_per_sec: n as f64 / (ms / 1e3),
        epm: 0.0,
        profiler_overhead_pct: 0.0,
        phases: Vec::new(),
    };

    let mut rows = Vec::new();
    let (gb01_ms, gb01_best) = time_scan(&mut || {
        let mut r = BucketReader::open(&gb01).expect("open gb01");
        let mut total = 0usize;
        while let Some(batch) = r.next_batch(4096).expect("gb01 batch") {
            total += batch.as_flat().len();
        }
        total
    });
    rows.push(scan_row("scan/gb01-buffered".to_string(), gb01_ms));

    let mut mmap_raw_best = f64::INFINITY;
    for codec in Codec::ALL {
        let path = dir.join(format!("scan_{codec}.gb2"));
        pmkm_data::write_gb02(&bucket, &path, codec, pmkm_data::DEFAULT_BLOCK_POINTS)
            .expect("write gb02 scan bucket");
        for backend in BackendKind::ALL {
            let (ms, best) = time_scan(&mut || {
                let r = Gb02Reader::open_path(&path, backend).expect("open gb02");
                let mut total = 0usize;
                for i in 0..r.n_blocks() {
                    total += r.read_block(i).expect("gb02 block").as_flat().len();
                }
                total
            });
            if backend == BackendKind::Mmap && codec == Codec::Raw {
                mmap_raw_best = best;
            }
            rows.push(scan_row(format!("scan/gb02-{backend}/{codec}"), ms));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let ratio = gb01_best / mmap_raw_best;
    println!(
        "[scan] mmap zero-copy vs gb01 buffered: {ratio:.2}x \
         (gb01 best {gb01_best:.3} ms, mmap/raw best {mmap_raw_best:.3} ms)"
    );
    assert!(
        ratio >= 1.0,
        "mmap zero-copy scan must be at least as fast as the GB01 buffered reader, \
         got {ratio:.2}x (gb01 {gb01_best:.3} ms vs mmap/raw {mmap_raw_best:.3} ms)"
    );
    rows
}

/// Benchmarks the multi-cell orchestrator: `cells` on-disk buckets run
/// through per-cell pipelines on `jobs` work-stealing workers. The serial
/// (`jobs = 1`) row is the per-cell-looping baseline the 4-worker row must
/// beat; results are bit-identical across `jobs` by construction and the
/// caller asserts it.
fn bench_orchestrate(
    paths: &[std::path::PathBuf],
    params: &Params,
    total_points: usize,
    jobs: usize,
) -> (Row, pmkm_stream::PlanetReport) {
    let mut kmeans =
        KMeansConfig { restarts: params.restarts, ..KMeansConfig::paper(params.k, params.seed) };
    kmeans.lloyd.kernel = KernelKind::Fused;
    let per_cell = total_points / paths.len();
    let logical = LogicalPlan::new(paths.to_vec(), kmeans);
    let plan = optimize_fixed_split(
        logical,
        &Resources::fixed(1 << 30, 1),
        per_cell.div_ceil(4).max(params.k),
    );
    let opts = pmkm_stream::OrchestratorOptions::new(jobs);

    let planet = pmkm_stream::orchestrate(&plan, &opts, None, None).expect("orchestrator warmup");
    assert_eq!(planet.cells.len(), paths.len(), "every cell must report");
    let mut samples = Vec::with_capacity(params.reps);
    let mut profiled_samples = Vec::with_capacity(params.reps);
    let mut last = None;
    for _ in 0..params.reps {
        let t = Instant::now();
        pmkm_stream::orchestrate(&plan, &opts, None, None).expect("orchestrator run");
        samples.push(t.elapsed().as_secs_f64() * 1e3);

        // The profiled arm carries the full observability stack — span
        // profiler AND worker timeline — so the overhead number covers the
        // per-chunk state recording, not just the phase spans.
        let rec = Arc::new(
            Recorder::new()
                .with_profiler(Arc::new(Profiler::new()))
                .with_timeline(Arc::new(Timeline::new())),
        );
        let t = Instant::now();
        let obs = pmkm_stream::orchestrate(&plan, &opts, Some(Arc::clone(&rec)), None)
            .expect("observed orchestrator run");
        profiled_samples.push(t.elapsed().as_secs_f64() * 1e3);
        last = Some((obs, rec));
    }
    let total_ms = median(samples);
    let profiled_ms = median(profiled_samples);
    let (observed, rec) = last.expect("reps >= 1");
    for (a, b) in planet.cells.iter().zip(&observed.cells) {
        assert_eq!(
            a.clustering.as_ref().map(|c| &c.output.centroids),
            b.clustering.as_ref().map(|c| &c.output.centroids),
            "observation must not change orchestrated results (jobs = {jobs})"
        );
    }

    let phases = rec.phase_rows();
    let phase_ms = |name: &str| {
        phases.iter().find(|p| p.path == name).map_or(0.0, |p| p.total_us as f64 / 1e3)
    };
    let mean_epm = planet.clusterings().map(|c| c.output.epm).sum::<f64>()
        / planet.clusterings().count().max(1) as f64;
    let row = Row {
        config: format!("orchestrate{jobs}/fused"),
        workers: jobs,
        kernel: "fused".to_string(),
        total_ms,
        partial_ms: phase_ms("partial"),
        merge_ms: phase_ms("merge"),
        points_per_sec: total_points as f64 / (total_ms / 1e3),
        epm: mean_epm,
        profiler_overhead_pct: (profiled_ms - total_ms) / total_ms * 100.0,
        phases,
    };
    (row, planet)
}

fn compare_against_baseline(report: &Report, path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("pipeline_bench: cannot read baseline {path}: {e}");
        std::process::exit(2)
    });
    let base: Report = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("pipeline_bench: cannot parse baseline {path}: {e}");
        std::process::exit(2)
    });
    if base.params != report.params {
        eprintln!(
            "pipeline_bench: baseline params {:?} do not match current {:?}",
            base.params, report.params
        );
        std::process::exit(2)
    }
    // Throughput gates only make sense within one hardware class: a
    // baseline recorded on different silicon (or an unkeyed pre-v4 one)
    // records the numbers but must not fail the build.
    if base.machine != report.machine {
        if base.machine.is_empty() {
            println!(
                "  baseline has no machine fingerprint (pre-v4); \
                 gating anyway against {}",
                report.machine
            );
        } else {
            println!(
                "SKIP: baseline machine class '{}' != current '{}'; \
                 regression gate not applicable across hardware classes",
                base.machine, report.machine
            );
            std::process::exit(0)
        }
    }
    let mut failed = false;
    for row in &report.rows {
        let Some(b) = base.rows.iter().find(|r| r.config == row.config) else {
            eprintln!("  {}: missing from baseline, skipped", row.config);
            continue;
        };
        let ratio = row.points_per_sec / b.points_per_sec;
        let regressed = ratio < REGRESSION_FLOOR;
        let verdict = if regressed { "FAIL" } else { "ok" };
        println!(
            "  {}: {:.0} pts/s vs baseline {:.0} ({:.1}%) {verdict}",
            row.config,
            row.points_per_sec,
            b.points_per_sec,
            ratio * 100.0
        );
        if regressed {
            // Attribute the lost time to phases: where did the profiled
            // run's self time grow relative to the baseline's?
            let deltas = pmkm_obs::attribute_phases(&b.phases, &row.phases);
            for d in deltas.iter().filter(|d| d.delta_us > 0).take(3) {
                println!(
                    "    phase '{}': {} µs → {} µs ({:+} µs, {:.0}% of the shift)",
                    d.path,
                    d.self_us_a,
                    d.self_us_b,
                    d.delta_us,
                    d.share * 100.0
                );
            }
        }
        failed |= regressed;
    }
    if failed {
        eprintln!(
            "FAIL: throughput regressed by more than {:.0}% on at least one configuration",
            (1.0 - REGRESSION_FLOOR) * 100.0
        );
        std::process::exit(1)
    }
    println!(
        "OK: no configuration regressed by more than {:.0}%",
        (1.0 - REGRESSION_FLOOR) * 100.0
    );
    std::process::exit(0)
}

fn main() {
    let opts = parse_opts();
    let (n, restarts, reps) = if opts.quick { (2_000, 1, 1) } else { (25_000, 2, 3) };
    let params = Params { n, dim: 6, k: K, partitions: PARTITIONS, restarts, reps, seed: SEED };
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(n, SEED))
        .expect("fig6 cell generator");

    let mut rows = Vec::new();
    for workers in [0, CLONES] {
        for kernel in [KernelKind::Scalar, KernelKind::Fused] {
            rows.push(bench_config(&cell, &params, workers, kernel));
        }
    }
    // Clone count must never change results (per-chunk seeds). Stream-engine
    // rows chunk the cell differently and are checked separately below.
    for kernel in ["scalar", "fused"] {
        let epms: Vec<f64> = rows.iter().filter(|r| r.kernel == kernel).map(|r| r.epm).collect();
        assert!(epms.windows(2).all(|w| w[0] == w[1]), "E_pm varies with clones: {epms:?}");
    }

    // The full stream engine over an on-disk bucket (execute/execute_observed).
    // The profiled fused run journals to --ledger when asked, so a bench run
    // leaves behind a diffable record (`pmkm diff old.jsonl new.jsonl`).
    for kernel in [KernelKind::Scalar, KernelKind::Fused] {
        let sink = match (&opts.ledger, kernel) {
            (Some(path), KernelKind::Fused) => {
                Some(Arc::new(pmkm_obs::LedgerSink::create(path).expect("create bench ledger")))
            }
            _ => None,
        };
        let wrote_ledger = sink.is_some();
        rows.push(bench_stream(&cell, &params, CLONES, kernel, sink, None));
        if wrote_ledger {
            println!("[ledger] {}", opts.ledger.as_deref().unwrap_or_default());
        }
    }
    // The same engine in coreset mode: the merge-reduce tree replaces the
    // buffer-everything merge, so these rows price the bounded-memory path
    // (chunk-coreset build + compactions + terminal anytime query).
    for kernel in [KernelKind::Scalar, KernelKind::Fused] {
        rows.push(bench_stream(&cell, &params, CLONES, kernel, None, Some(256)));
    }
    let stream_epms: Vec<f64> = rows
        .iter()
        .filter(|r| r.config.starts_with("stream") || r.config.starts_with("coreset"))
        .map(|r| r.epm)
        .collect();
    assert!(
        stream_epms.iter().all(|e| e.is_finite() && *e > 0.0),
        "stream-engine E_pm must be finite and positive: {stream_epms:?}"
    );

    // The multi-cell orchestrator: 8 cells, serial loop (jobs = 1) vs 4
    // work-stealing workers over identical per-cell pipelines.
    let orch_cells = 8usize;
    let per_cell = (n / orch_cells).max(2 * K);
    let orch_dir = std::env::temp_dir().join(format!("pmkm_orch_bench_{}", std::process::id()));
    std::fs::create_dir_all(&orch_dir).expect("orchestrator bench dir");
    let orch_paths: Vec<std::path::PathBuf> = (1..=orch_cells as u16)
        .map(|i| {
            let points =
                pmkm_data::generator::generate_cell(&CellConfig::paper(per_cell, SEED + i as u64))
                    .expect("orchestrator cell generator");
            let gcell = GridCell::new(i, i).expect("grid cell");
            let path = orch_dir.join(gcell.bucket_file_name());
            GridBucket { cell: gcell, points }.write_to(&path).expect("write orch bucket");
            path
        })
        .collect();
    let (serial_row, serial_planet) =
        bench_orchestrate(&orch_paths, &params, orch_cells * per_cell, 1);
    let (parallel_row, parallel_planet) =
        bench_orchestrate(&orch_paths, &params, orch_cells * per_cell, 4);
    // Worker count never changes results — per-cell determinism is the
    // orchestrator's resume oracle, so pin it here at bench scale too.
    for (a, b) in serial_planet.cells.iter().zip(&parallel_planet.cells) {
        assert_eq!(
            a.clustering.as_ref().map(|c| &c.output.centroids),
            b.clustering.as_ref().map(|c| &c.output.centroids),
            "orchestrated results must not depend on jobs"
        );
    }
    let speedup = parallel_row.points_per_sec / serial_row.points_per_sec;
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!(
        "[orchestrate] 4 workers vs serial loop over {orch_cells} cells: \
         {speedup:.2}x speedup ({cores} core(s))"
    );
    if !opts.quick && cores >= 2 {
        // On parallel hardware the work-stealing workers must beat the
        // serial per-cell loop; a single core has no headroom to exploit,
        // so there the number is recorded but not gated.
        assert!(
            speedup > 1.0,
            "4-worker orchestration must beat the serial per-cell loop, got {speedup:.2}x"
        );
    }
    rows.push(serial_row);
    rows.push(parallel_row);
    let _ = std::fs::remove_dir_all(&orch_dir);

    // Scan-only backend × codec rows, with the mmap ≥ gb01-buffered gate.
    rows.extend(bench_scan(&cell, &params));

    if opts.simulate_regression > 0.0 {
        println!("[simulating a {:.0}% throughput regression]", opts.simulate_regression * 100.0);
        for row in &mut rows {
            row.points_per_sec *= 1.0 - opts.simulate_regression;
        }
    }

    print_table(
        &format!("Partial/merge pipeline (fig6 cell, N={n}, k={K}, median of {reps})"),
        &["config", "total ms", "partial ms", "merge ms", "points/s", "prof ovh"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.config.clone(),
                    format!("{:.1}", r.total_ms),
                    format!("{:.1}", r.partial_ms),
                    format!("{:.1}", r.merge_ms),
                    format!("{:.0}", r.points_per_sec),
                    format!("{:+.1}%", r.profiler_overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let machine = machine_fingerprint();
    println!("[machine] {machine}");
    let report = Report {
        schema_version: SCHEMA_VERSION,
        workload: format!("fig6 paper cell (6-D MISR-like, CellConfig::paper({n}, {SEED}))"),
        machine,
        params,
        rows,
    };
    let path = match &opts.out {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json")
        }
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, format!("{json}\n")).expect("write report");
    println!("\n[written] {}", path.display());

    if let Some(baseline) = &opts.baseline {
        compare_against_baseline(&report, baseline);
    }
}
