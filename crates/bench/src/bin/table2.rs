//! Regenerates **Table 2** of the paper: serial vs 5-split vs 10-split —
//! partial time (`t C0−Ci`), merge time (`t merge`), minimum MSE, overall
//! time — over the N sweep, averaged across dataset versions.
//!
//! Usage: `cargo run --release -p pmkm-bench --bin table2 [--full]
//! [--sizes=a,b,c] [--versions=V] [--restarts=R] [--seed=S]`.

use pmkm_bench::experiments::{mean_rows, run_sweep, SweepConfig};
use pmkm_bench::report::{grouped, print_table, write_json};

fn main() {
    let cfg = SweepConfig::from_args();
    eprintln!("[table2] config: {cfg:?}");
    let rows = run_sweep(&cfg);
    let means = mean_rows(&rows);

    // Paper layout: sizes descending, 10split / 5split / serial per size.
    let mut printable: Vec<Vec<String>> = Vec::new();
    let mut sizes = cfg.sizes.clone();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    for &n in &sizes {
        for algo in ["10split", "5split", "serial"] {
            let Some(m) = means.iter().find(|m| m.n == n && m.algo == algo) else {
                continue;
            };
            let dash = "–".to_string();
            printable.push(vec![
                n.to_string(),
                algo.to_string(),
                if algo == "serial" { dash.clone() } else { grouped(m.partial_ms) },
                if algo == "serial" { dash } else { grouped(m.merge_ms) },
                grouped(m.min_mse),
                grouped(m.overall_ms),
                grouped(m.data_mse),
            ]);
        }
    }
    print_table(
        "Table 2 — serial vs partial/merge (times in ms; data MSE is an extra column)",
        &["data pts", "case", "t C0-Ci", "t merge", "Min MSE", "overall t", "data MSE"],
        &printable,
    );

    write_json("table2_rows", &rows).expect("write JSON");
    write_json("table2_means", &means).expect("write JSON");
}
