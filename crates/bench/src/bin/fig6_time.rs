//! Regenerates **Figure 6**: overall execution time vs number of data
//! points per grid cell, one series per algorithm (serial, chunk = 5,
//! chunk = 10).
//!
//! Pass `--reuse` to re-plot from `table2_rows.json` instead of re-running.

use pmkm_bench::experiments::{load_or_run_sweep, mean_rows, SweepConfig};
use pmkm_bench::report::{ms, print_table, write_json};

fn main() {
    let cfg = SweepConfig::from_args();
    let rows = load_or_run_sweep(&cfg);
    let means = mean_rows(&rows);

    let mut sizes: Vec<usize> = means.iter().map(|m| m.n).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut printable = Vec::new();
    for &n in &sizes {
        let get = |algo: &str| {
            means
                .iter()
                .find(|m| m.n == n && m.algo == algo)
                .map(|m| ms(m.overall_ms))
                .unwrap_or_else(|| "–".into())
        };
        printable.push(vec![n.to_string(), get("serial"), get("5split"), get("10split")]);
    }
    print_table(
        "Figure 6 — overall execution time vs N",
        &["N", "serial", "chunk=5", "chunk=10"],
        &printable,
    );

    let series: Vec<(String, Vec<(usize, f64)>)> = ["serial", "5split", "10split"]
        .iter()
        .map(|algo| {
            (
                algo.to_string(),
                sizes
                    .iter()
                    .filter_map(|&n| {
                        means
                            .iter()
                            .find(|m| m.n == n && m.algo == *algo)
                            .map(|m| (n, m.overall_ms))
                    })
                    .collect(),
            )
        })
        .collect();
    write_json("fig6_time_series", &series).expect("write JSON");

    // One small observed partial/merge run documents where the time goes
    // (per-chunk timings, Lloyd iteration counters) alongside the figure.
    if let Some(&n) = sizes.first() {
        let cell = cfg.cell(n, 0);
        let pm = pmkm_core::PartialMergeConfig {
            kmeans: cfg.kmeans_for(n, 0),
            partitions: pmkm_core::PartitionSpec::Count(5),
            ..pmkm_core::PartialMergeConfig::paper(cfg.k, 5, cfg.seed)
        };
        let rec = pmkm_obs::Recorder::new();
        let (_, run_report) =
            pmkm_core::partial_merge_observed(&cell, &pm, None, Some(&rec)).expect("observed run");
        write_json("fig6_run_report", &run_report).expect("write run report");
    }
}
