//! The EOSDIS-scale framing of §1/§2.1: a *coverage* is G grid cells, each
//! clustered independently (time complexity `O(G·R·I·K·N)`). This harness
//! builds G on-disk buckets and measures end-to-end throughput of
//!
//! * a serial loop (load cell, best-of-R k-means, next cell),
//! * the stream engine with static cloning,
//! * the stream engine with adaptive cloning,
//!
//! reporting cells/second and points/second.
//!
//! Usage: `… --bin global_coverage [--sizes=N] [--k=K] [--restarts=R]`
//! (`--sizes` first entry = points per cell; cells default to 24).

use pmkm_baselines::serial_kmeans;
use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{ms, print_table, write_json};
use pmkm_data::{GridBucket, GridCell};
use pmkm_stream::prelude::*;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct CoverageRow {
    mode: String,
    total_ms: f64,
    cells_per_s: f64,
    points_per_s: f64,
}

fn main() {
    let mut cfg = SweepConfig::from_args();
    if cfg.sizes == SweepConfig::quick().sizes {
        cfg.sizes = vec![10_000];
    }
    let n = cfg.sizes[0];
    let cells = 24usize;
    eprintln!("[coverage] {cells} cells × {n} points, k={}, R={}", cfg.k, cfg.restarts);

    let dir = std::env::temp_dir().join(format!("pmkm_coverage_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let mut paths = Vec::new();
    let mut datasets = Vec::new();
    for i in 0..cells {
        let cell = GridCell::new((40 + i) as u16, (40 + i) as u16).expect("valid");
        let points = cfg.cell(n, i as u32);
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points: points.clone() }.write_to(&path).expect("write");
        paths.push(path);
        datasets.push(points);
    }
    let kcfg = cfg.kmeans_for(n, 0);
    let total_points = (cells * n) as f64;
    let mut rows = Vec::new();
    let mut push = |mode: &str, secs: f64| {
        rows.push(CoverageRow {
            mode: mode.into(),
            total_ms: secs * 1e3,
            cells_per_s: cells as f64 / secs,
            points_per_s: total_points / secs,
        });
        eprintln!("[coverage] {mode}: {:.1}s", secs);
    };

    // Serial loop over cells (Method "load everything" baseline).
    let t = Instant::now();
    for ds in &datasets {
        serial_kmeans(ds, &kcfg).expect("serial");
    }
    push("serial loop", t.elapsed().as_secs_f64());

    // Stream engine, static plan.
    let workers = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let plan = optimize_fixed_split(
        LogicalPlan::new(paths.clone(), kcfg),
        &Resources::fixed(64 << 20, workers),
        n.div_ceil(10),
    );
    let t = Instant::now();
    let report = execute(&plan).expect("engine");
    assert_eq!(report.cells.len(), cells);
    push("stream engine (static)", t.elapsed().as_secs_f64());

    // Stream engine, adaptive cloning.
    let t = Instant::now();
    let adaptive = pmkm_stream::execute_adaptive(&plan).expect("adaptive");
    assert_eq!(adaptive.report.cells.len(), cells);
    push(
        &format!("stream engine (adaptive, {} clones)", adaptive.clones_started),
        t.elapsed().as_secs_f64(),
    );

    std::fs::remove_dir_all(&dir).ok();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                ms(r.total_ms),
                format!("{:.2}", r.cells_per_s),
                format!("{:.0}", r.points_per_s),
            ]
        })
        .collect();
    print_table(
        &format!("Global coverage throughput — {cells} cells × {n} points"),
        &["mode", "total", "cells/s", "points/s"],
        &printable,
    );
    write_json("global_coverage", &rows).expect("write JSON");
}
