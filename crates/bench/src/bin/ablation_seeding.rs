//! Ablation of the §3.3 merge seeding rule. The paper seeds the merge
//! k-means with the k *heaviest* weighted centroids ("this would not be
//! enforced if the set of seeds would be chosen randomly"); this harness
//! quantifies the claim by seeding the same gathered centroid sets three
//! ways: heaviest, random, and k-means++.

use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{grouped, print_table, write_json};
use pmkm_core::{
    kmeans, metrics, partial_kmeans, partition_random, KMeansConfig, PointSource, SeedMode,
    WeightedSet,
};
use serde::Serialize;

#[derive(Serialize)]
struct SeedRow {
    n: usize,
    seeding: String,
    epm_mse: f64,
    data_mse: f64,
    iterations: usize,
}

fn main() {
    let cfg = SweepConfig::from_args();
    let splits = 10usize;
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        for version in 0..cfg.versions {
            let cell = cfg.cell(n, version);
            let kcfg = cfg.kmeans_for(n, version);
            // Shared partial phase: the seeding ablation only varies the
            // merge, so all three arms see identical weighted centroids.
            let chunks = partition_random(&cell, splits, kcfg.seed, true).expect("partitioning");
            let mut gathered = WeightedSet::new(6).expect("dim 6");
            for (i, chunk) in chunks.iter().enumerate() {
                if chunk.is_empty() {
                    continue;
                }
                let ccfg = KMeansConfig {
                    seed: pmkm_core::seeding::derive_seed(kcfg.seed, i as u64),
                    ..kcfg
                };
                let out = partial_kmeans(chunk, &ccfg).expect("partial");
                gathered.extend_from(&out.centroids).expect("same dim");
            }
            for (mode, label) in [
                (SeedMode::HeaviestPoints, "heaviest"),
                (SeedMode::RandomPoints, "random"),
                (SeedMode::PlusPlus, "kmeans++"),
            ] {
                eprintln!("[ablation_seeding] n={n} v={version} {label}");
                let mcfg = KMeansConfig { seed_mode: mode, restarts: 1, ..kcfg };
                let out = kmeans(&gathered, &mcfg).expect("merge k-means");
                let data_mse =
                    metrics::mse_against(&cell, &out.best.centroids).expect("evaluation");
                rows.push(SeedRow {
                    n,
                    seeding: label.into(),
                    epm_mse: out.best.mse,
                    data_mse,
                    iterations: out.best.iterations,
                });
            }
        }
    }

    let mut printable = Vec::new();
    let mut sizes = cfg.sizes.clone();
    sizes.sort_unstable();
    for &n in &sizes {
        for mode in ["heaviest", "random", "kmeans++"] {
            let group: Vec<&SeedRow> =
                rows.iter().filter(|r| r.n == n && r.seeding == mode).collect();
            if group.is_empty() {
                continue;
            }
            let m = group.len() as f64;
            printable.push(vec![
                n.to_string(),
                mode.to_string(),
                grouped(group.iter().map(|r| r.epm_mse).sum::<f64>() / m),
                grouped(group.iter().map(|r| r.data_mse).sum::<f64>() / m),
                format!("{:.1}", group.iter().map(|r| r.iterations as f64).sum::<f64>() / m),
            ]);
        }
    }
    print_table(
        "§3.3 merge-seeding ablation (10-split, single merge run)",
        &["N", "seeding", "E_pm MSE", "data MSE", "merge iters"],
        &printable,
    );
    write_json("ablation_seeding", &rows).expect("write JSON");
}
