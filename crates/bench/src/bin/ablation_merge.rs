//! Ablation of the §3.3 merge options: **collective** (option b, the
//! paper's choice) vs **incremental** (option a). The paper argues the
//! collective merge is more faithful because early chunks are not treated
//! preferentially; this harness measures that claim on the N sweep.

use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{grouped, print_table, write_json};
use pmkm_core::{metrics, partial_merge, MergeMode, PartialMergeConfig, PartitionSpec};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    n: usize,
    mode: String,
    epm_mse: f64,
    data_mse: f64,
    merge_ms: f64,
}

fn main() {
    let cfg = SweepConfig::from_args();
    let splits = 10usize;
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        for version in 0..cfg.versions {
            let cell = cfg.cell(n, version);
            for (mode, label) in
                [(MergeMode::Collective, "collective"), (MergeMode::Incremental, "incremental")]
            {
                eprintln!("[ablation_merge] n={n} v={version} {label}");
                let pm = PartialMergeConfig {
                    kmeans: cfg.kmeans_for(n, version),
                    partitions: PartitionSpec::Count(splits),
                    merge_mode: mode,
                    merge_restarts: 1,
                    slicing: pmkm_core::SliceStrategy::RandomOverlap,
                };
                let out = partial_merge(&cell, &pm).expect("ablation case");
                let data_mse =
                    metrics::mse_against(&cell, &out.merge.centroids).expect("evaluation");
                rows.push(AblationRow {
                    n,
                    mode: label.into(),
                    epm_mse: out.merge.mse,
                    data_mse,
                    merge_ms: out.merge.elapsed.as_secs_f64() * 1e3,
                });
            }
        }
    }

    // Average over versions.
    let mut printable = Vec::new();
    let mut sizes = cfg.sizes.clone();
    sizes.sort_unstable();
    for &n in &sizes {
        for mode in ["collective", "incremental"] {
            let group: Vec<&AblationRow> =
                rows.iter().filter(|r| r.n == n && r.mode == mode).collect();
            if group.is_empty() {
                continue;
            }
            let m = group.len() as f64;
            printable.push(vec![
                n.to_string(),
                mode.to_string(),
                grouped(group.iter().map(|r| r.epm_mse).sum::<f64>() / m),
                grouped(group.iter().map(|r| r.data_mse).sum::<f64>() / m),
                format!("{:.1}", group.iter().map(|r| r.merge_ms).sum::<f64>() / m),
            ]);
        }
    }
    print_table(
        "§3.3 merge ablation — collective vs incremental (10-split)",
        &["N", "mode", "E_pm MSE", "data MSE", "merge ms"],
        &printable,
    );
    write_json("ablation_merge", &rows).expect("write JSON");
}
