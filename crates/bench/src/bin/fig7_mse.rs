//! Regenerates **Figure 7**: minimum MSE vs number of data points per grid
//! cell (serial, chunk = 5, chunk = 10). Also prints the data-space MSE of
//! the same centroids as an honesty check (the paper compares the serial
//! point-space MSE against the partial/merge `E_pm`-based MSE).
//!
//! Pass `--reuse` to re-plot from `table2_rows.json`.

use pmkm_bench::experiments::{load_or_run_sweep, mean_rows, SweepConfig};
use pmkm_bench::report::{grouped, print_table, write_json};

fn main() {
    let cfg = SweepConfig::from_args();
    let rows = load_or_run_sweep(&cfg);
    let means = mean_rows(&rows);

    let mut sizes: Vec<usize> = means.iter().map(|m| m.n).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut printable = Vec::new();
    for &n in &sizes {
        let get = |algo: &str, data: bool| {
            means
                .iter()
                .find(|m| m.n == n && m.algo == algo)
                .map(|m| grouped(if data { m.data_mse } else { m.min_mse }))
                .unwrap_or_else(|| "–".into())
        };
        printable.push(vec![
            n.to_string(),
            get("serial", false),
            get("5split", false),
            get("10split", false),
            get("5split", true),
            get("10split", true),
        ]);
    }
    print_table(
        "Figure 7 — minimum MSE vs N (paper metric; last two columns: data-space MSE)",
        &["N", "serial", "chunk=5", "chunk=10", "5 (data)", "10 (data)"],
        &printable,
    );

    let series: Vec<(String, Vec<(usize, f64)>)> = ["serial", "5split", "10split"]
        .iter()
        .map(|algo| {
            (
                algo.to_string(),
                sizes
                    .iter()
                    .filter_map(|&n| {
                        means.iter().find(|m| m.n == n && m.algo == *algo).map(|m| (n, m.min_mse))
                    })
                    .collect(),
            )
        })
        .collect();
    write_json("fig7_mse_series", &series).expect("write JSON");

    // One small observed partial/merge run records the per-chunk MSE
    // trajectories behind the figure's quality numbers.
    if let Some(&n) = sizes.first() {
        let cell = cfg.cell(n, 0);
        let pm = pmkm_core::PartialMergeConfig {
            kmeans: cfg.kmeans_for(n, 0),
            partitions: pmkm_core::PartitionSpec::Count(5),
            ..pmkm_core::PartialMergeConfig::paper(cfg.k, 5, cfg.seed)
        };
        let rec = pmkm_obs::Recorder::new();
        let (_, run_report) =
            pmkm_core::partial_merge_observed(&cell, &pm, None, Some(&rec)).expect("observed run");
        write_json("fig7_run_report", &run_report).expect("write run report");
    }
}
