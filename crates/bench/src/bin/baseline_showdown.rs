//! Extension experiment: partial/merge k-means against the §2.2 related
//! work — BIRCH and a STREAM/LOCALSEARCH-style streaming k-median — on the
//! same cells, comparing wall time and data-space MSE (all algorithms
//! evaluated against the original points for a fair quality axis).

use pmkm_baselines::{
    birch, clarans, minibatch_kmeans, serial_kmeans, stream_lsearch, BirchConfig, ClaransConfig,
    MiniBatchConfig, StreamLsConfig,
};
use pmkm_bench::experiments::SweepConfig;
use pmkm_bench::report::{grouped, ms, print_table, write_json};
use pmkm_core::{metrics, partial_merge, PartialMergeConfig, PartitionSpec, PointSource};
use serde::Serialize;

#[derive(Serialize)]
struct ShowdownRow {
    n: usize,
    algo: String,
    time_ms: f64,
    data_mse: f64,
    representation_size: usize,
}

fn main() {
    let cfg = SweepConfig::from_args();
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        for version in 0..cfg.versions.min(2) {
            let cell = cfg.cell(n, version);
            let kcfg = cfg.kmeans_for(n, version);
            eprintln!("[showdown] n={n} v={version}");

            // Serial k-means.
            let t = std::time::Instant::now();
            let serial = serial_kmeans(&cell, &kcfg).expect("serial");
            rows.push(ShowdownRow {
                n,
                algo: "serial-kmeans".into(),
                time_ms: t.elapsed().as_secs_f64() * 1e3,
                data_mse: serial.outcome.best.mse,
                representation_size: serial.outcome.best.centroids.k(),
            });

            // Partial/merge (10-split).
            let pm = PartialMergeConfig {
                kmeans: kcfg,
                partitions: PartitionSpec::Count(10),
                merge_mode: pmkm_core::MergeMode::Collective,
                merge_restarts: 1,
                slicing: pmkm_core::SliceStrategy::RandomOverlap,
            };
            let t = std::time::Instant::now();
            let out = partial_merge(&cell, &pm).expect("partial/merge");
            let dmse = metrics::mse_against(&cell, &out.merge.centroids).expect("eval");
            rows.push(ShowdownRow {
                n,
                algo: "partial/merge".into(),
                time_ms: t.elapsed().as_secs_f64() * 1e3,
                data_mse: dmse,
                representation_size: out.merge.centroids.k(),
            });

            // BIRCH: threshold tuned to the generator's within-regime
            // spread (σ ∈ 5..40 over 6 dims ⇒ cluster radius ~30-100).
            let bcfg = BirchConfig {
                branching: 8,
                max_leaf_entries: 16,
                threshold: 60.0,
                k: cfg.k,
                restarts: kcfg.restarts,
                seed: kcfg.seed,
            };
            let t = std::time::Instant::now();
            let b = birch(&cell, &bcfg).expect("birch");
            let dmse = metrics::mse_against(&cell, &b.centroids).expect("eval");
            rows.push(ShowdownRow {
                n,
                algo: "birch".into(),
                time_ms: t.elapsed().as_secs_f64() * 1e3,
                data_mse: dmse,
                representation_size: b.leaf_entries,
            });

            // STREAM-LS (same 10 chunks).
            let scfg = StreamLsConfig {
                k: cfg.k,
                max_retained: cfg.k * 12,
                swap_attempts: 150,
                seed: kcfg.seed,
            };
            let t = std::time::Instant::now();
            let s = stream_lsearch(&cell, 10, scfg).expect("stream-ls");
            let dmse =
                metrics::mse_against(&cell, &s.centroids().expect("centroids")).expect("eval");
            rows.push(ShowdownRow {
                n,
                algo: "stream-ls".into(),
                time_ms: t.elapsed().as_secs_f64() * 1e3,
                data_mse: dmse,
                representation_size: s.centers.len(),
            });

            // Mini-batch k-means (post-2004 comparator): one "epoch" worth
            // of samples.
            let mcfg = MiniBatchConfig {
                k: cfg.k,
                batch_size: 256,
                steps: (n / 256).max(50),
                seed: kcfg.seed,
            };
            let t = std::time::Instant::now();
            let mb = minibatch_kmeans(&cell, &mcfg).expect("minibatch");
            rows.push(ShowdownRow {
                n,
                algo: "minibatch".into(),
                time_ms: t.elapsed().as_secs_f64() * 1e3,
                data_mse: mb.mse,
                representation_size: mb.centroids.k(),
            });

            // CLARANS (bounded neighbor search so large N stays tractable).
            let ccfg =
                ClaransConfig { k: cfg.k, num_local: 2, max_neighbors: 250, seed: kcfg.seed };
            let t = std::time::Instant::now();
            let c = clarans(&cell, &ccfg).expect("clarans");
            let dmse = metrics::mse_against(&cell, &c.medoids).expect("eval");
            rows.push(ShowdownRow {
                n,
                algo: "clarans".into(),
                time_ms: t.elapsed().as_secs_f64() * 1e3,
                data_mse: dmse,
                representation_size: c.medoids.k(),
            });
        }
    }

    // Average and print.
    let mut printable = Vec::new();
    let mut sizes = cfg.sizes.clone();
    sizes.sort_unstable();
    for &n in &sizes {
        for algo in ["serial-kmeans", "partial/merge", "birch", "stream-ls", "clarans", "minibatch"]
        {
            let group: Vec<&ShowdownRow> =
                rows.iter().filter(|r| r.n == n && r.algo == algo).collect();
            if group.is_empty() {
                continue;
            }
            let m = group.len() as f64;
            printable.push(vec![
                n.to_string(),
                algo.to_string(),
                ms(group.iter().map(|r| r.time_ms).sum::<f64>() / m),
                grouped(group.iter().map(|r| r.data_mse).sum::<f64>() / m),
                format!(
                    "{:.0}",
                    group.iter().map(|r| r.representation_size as f64).sum::<f64>() / m
                ),
            ]);
        }
    }
    print_table(
        "Related-work showdown — data-space MSE and wall time",
        &["N", "algorithm", "time", "data MSE", "repr size"],
        &printable,
    );
    write_json("baseline_showdown", &rows).expect("write JSON");
}
