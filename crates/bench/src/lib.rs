//! # pmkm-bench — experiment harnesses
//!
//! Library support for the `src/bin/*` harness binaries that regenerate
//! every table and figure of the paper, plus the criterion microbenches in
//! `benches/`. See DESIGN.md §4 for the experiment index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
