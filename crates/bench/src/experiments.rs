//! The shared experiment sweep behind Table 2 and Figures 6–8.
//!
//! One *case* = (cell size `N`, algorithm, dataset version). Algorithms:
//! serial best-of-R k-means, and partial/merge with 5 or 10 splits —
//! exactly the paper's §5.1 comparison matrix (k = 40, D = 6, R = 10,
//! five data versions per configuration).

use pmkm_baselines::serial_kmeans;
use pmkm_core::{metrics, partial_merge, Dataset, KMeansConfig, MergeMode, PartialMergeConfig};
use pmkm_data::generator::{paper_cell, version_seed, PAPER_K, PAPER_SWEEP};
use serde::{Deserialize, Serialize};

/// Sweep parameters (scaled-down defaults keep a full run laptop-friendly;
/// `--full` reproduces the paper's exact R = 10 / 5-version setting).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Cluster count (paper: 40).
    pub k: usize,
    /// Restarts per clustering (paper: 10).
    pub restarts: usize,
    /// Dataset versions per configuration (paper: 5).
    pub versions: u32,
    /// Cell sizes to sweep.
    pub sizes: Vec<usize>,
    /// Base seed for data generation and clustering.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's full experimental grid.
    pub fn paper() -> Self {
        Self { k: PAPER_K, restarts: 10, versions: 5, sizes: PAPER_SWEEP.to_vec(), seed: 0xC0FFEE }
    }

    /// A reduced grid for quick regeneration (same sizes, fewer repeats).
    pub fn quick() -> Self {
        Self { restarts: 3, versions: 2, ..Self::paper() }
    }

    /// Parses command-line arguments:
    /// `--full`, `--k=K`, `--restarts=R`, `--versions=V`, `--seed=S`,
    /// `--sizes=a,b,c`. Unknown arguments abort with a usage message.
    pub fn from_args() -> Self {
        let mut cfg = Self::quick();
        for arg in std::env::args().skip(1) {
            if arg == "--reuse" {
                // handled by `reuse_requested`
            } else if arg == "--full" {
                cfg = Self::paper();
            } else if let Some(v) = arg.strip_prefix("--k=") {
                cfg.k = v.parse().expect("--k=<usize>");
            } else if let Some(v) = arg.strip_prefix("--restarts=") {
                cfg.restarts = v.parse().expect("--restarts=<usize>");
            } else if let Some(v) = arg.strip_prefix("--versions=") {
                cfg.versions = v.parse().expect("--versions=<u32>");
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                cfg.seed = v.parse().expect("--seed=<u64>");
            } else if let Some(v) = arg.strip_prefix("--sizes=") {
                cfg.sizes =
                    v.split(',').map(|s| s.trim().parse().expect("--sizes=<n,n,...>")).collect();
            } else {
                eprintln!(
                    "unknown argument '{arg}'; supported: --full --k= --restarts= \
                     --versions= --seed= --sizes=a,b,c"
                );
                std::process::exit(2);
            }
        }
        cfg
    }

    /// The k-means configuration for `(n, version)`.
    pub fn kmeans_for(&self, n: usize, version: u32) -> KMeansConfig {
        KMeansConfig {
            restarts: self.restarts,
            ..KMeansConfig::paper(self.k, version_seed(self.seed, n, version))
        }
    }

    /// Generates the `(n, version)` cell.
    pub fn cell(&self, n: usize, version: u32) -> Dataset {
        paper_cell(n, version, self.seed).expect("valid generator parameters")
    }
}

/// One measured case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseRow {
    /// Cell size `N`.
    pub n: usize,
    /// `"serial"`, `"5split"` or `"10split"`.
    pub algo: String,
    /// Dataset version.
    pub version: u32,
    /// Partial-phase time (Table 2's `t C0−Ci`); 0 for serial.
    pub partial_ms: f64,
    /// Merge time (`t merge`); 0 for serial.
    pub merge_ms: f64,
    /// The paper's `Min MSE` column. Inspection of Table 2 shows the paper
    /// tabulates the error *sum* (its `E` for serial — linear in N at
    /// ~1.4/point — and `E_pm` for partial/merge), so that is what this
    /// records: serial = best SSE over points, splits = `E_pm` over the
    /// gathered weighted centroids.
    pub min_mse: f64,
    /// Overall wall time (`overall t`).
    pub overall_ms: f64,
    /// Extra (not in the paper): MSE of the final centroids against the
    /// *original* points — an apples-to-apples quality metric.
    pub data_mse: f64,
    /// Lloyd iterations spent in total.
    pub iterations: usize,
}

/// Runs the serial baseline case.
pub fn run_serial(cfg: &SweepConfig, n: usize, version: u32) -> CaseRow {
    let cell = cfg.cell(n, version);
    let kcfg = cfg.kmeans_for(n, version);
    let out = serial_kmeans(&cell, &kcfg).expect("serial case");
    let ms = out.elapsed.as_secs_f64() * 1e3;
    CaseRow {
        n,
        algo: "serial".into(),
        version,
        partial_ms: 0.0,
        merge_ms: 0.0,
        min_mse: out.outcome.best.sse,
        overall_ms: ms,
        data_mse: out.outcome.best.mse,
        iterations: out.outcome.total_iterations(),
    }
}

/// Runs a partial/merge case with `splits` chunks (serial partial phase,
/// matching Table 2's single-machine runs).
pub fn run_split(cfg: &SweepConfig, n: usize, version: u32, splits: usize) -> CaseRow {
    let cell = cfg.cell(n, version);
    let pm_cfg = PartialMergeConfig {
        kmeans: cfg.kmeans_for(n, version),
        partitions: pmkm_core::PartitionSpec::Count(splits),
        merge_mode: MergeMode::Collective,
        merge_restarts: 1,
        slicing: pmkm_core::SliceStrategy::RandomOverlap,
    };
    let out = partial_merge(&cell, &pm_cfg).expect("partial/merge case");
    let data_mse = metrics::mse_against(&cell, &out.merge.centroids).expect("evaluation");
    let iters: usize =
        out.chunks.iter().map(|c| c.total_iterations).sum::<usize>() + out.merge.iterations;
    CaseRow {
        n,
        algo: format!("{splits}split"),
        version,
        partial_ms: out.partial_elapsed.as_secs_f64() * 1e3,
        merge_ms: out.merge.elapsed.as_secs_f64() * 1e3,
        min_mse: out.merge.epm,
        overall_ms: out.total_elapsed.as_secs_f64() * 1e3,
        data_mse,
        iterations: iters,
    }
}

/// Mean of the per-version rows for one `(n, algo)` group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeanRow {
    /// Cell size.
    pub n: usize,
    /// Algorithm label.
    pub algo: String,
    /// Mean partial time (ms).
    pub partial_ms: f64,
    /// Mean merge time (ms).
    pub merge_ms: f64,
    /// Mean of the minimum MSEs.
    pub min_mse: f64,
    /// Mean overall time (ms).
    pub overall_ms: f64,
    /// Mean data-space MSE.
    pub data_mse: f64,
    /// Versions averaged.
    pub versions: usize,
}

/// Groups rows by `(n, algo)` and averages, preserving sweep order.
pub fn mean_rows(rows: &[CaseRow]) -> Vec<MeanRow> {
    let mut order: Vec<(usize, String)> = Vec::new();
    for r in rows {
        let key = (r.n, r.algo.clone());
        if !order.contains(&key) {
            order.push(key);
        }
    }
    order
        .into_iter()
        .map(|(n, algo)| {
            let group: Vec<&CaseRow> = rows.iter().filter(|r| r.n == n && r.algo == algo).collect();
            let m = group.len() as f64;
            MeanRow {
                n,
                algo,
                partial_ms: group.iter().map(|r| r.partial_ms).sum::<f64>() / m,
                merge_ms: group.iter().map(|r| r.merge_ms).sum::<f64>() / m,
                min_mse: group.iter().map(|r| r.min_mse).sum::<f64>() / m,
                overall_ms: group.iter().map(|r| r.overall_ms).sum::<f64>() / m,
                data_mse: group.iter().map(|r| r.data_mse).sum::<f64>() / m,
                versions: group.len(),
            }
        })
        .collect()
}

/// Loads previously written rows from `target/experiments/<name>.json`
/// (written by the `table2` binary), so the figure binaries can re-plot
/// without re-running the sweep. Pass `--reuse` to those binaries.
pub fn load_rows(name: &str) -> Option<Vec<CaseRow>> {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments")
        .join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// True if `--reuse` was passed on the command line.
pub fn reuse_requested() -> bool {
    std::env::args().any(|a| a == "--reuse")
}

/// Either loads `table2_rows.json` (with `--reuse`) or runs the sweep.
pub fn load_or_run_sweep(cfg: &SweepConfig) -> Vec<CaseRow> {
    if reuse_requested() {
        if let Some(rows) = load_rows("table2_rows") {
            eprintln!("[sweep] reusing {} rows from table2_rows.json", rows.len());
            return rows;
        }
        eprintln!("[sweep] --reuse requested but no table2_rows.json; running sweep");
    }
    run_sweep(cfg)
}

/// Runs the full three-algorithm sweep, logging progress to stderr.
pub fn run_sweep(cfg: &SweepConfig) -> Vec<CaseRow> {
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        for version in 0..cfg.versions {
            eprintln!("[sweep] n={n} version={version} serial…");
            rows.push(run_serial(cfg, n, version));
            for splits in [5usize, 10] {
                eprintln!("[sweep] n={n} version={version} {splits}split…");
                rows.push(run_split(cfg, n, version, splits));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig { k: 5, restarts: 2, versions: 2, sizes: vec![120], seed: 3 }
    }

    #[test]
    fn serial_case_reports_sane_numbers() {
        let cfg = tiny();
        let row = run_serial(&cfg, 120, 0);
        assert_eq!(row.algo, "serial");
        assert!(row.min_mse.is_finite() && row.min_mse >= 0.0);
        // Serial: the paper metric is the SSE = data MSE × N.
        assert!((row.min_mse - row.data_mse * 120.0).abs() < 1e-6 * row.min_mse.max(1.0));
        assert!(row.overall_ms > 0.0);
        assert!(row.iterations >= 2);
    }

    #[test]
    fn split_case_reports_sane_numbers() {
        let cfg = tiny();
        let row = run_split(&cfg, 120, 0, 5);
        assert_eq!(row.algo, "5split");
        assert!(row.partial_ms > 0.0);
        assert!(row.overall_ms >= row.partial_ms);
        assert!(row.min_mse >= 0.0 && row.data_mse >= 0.0);
        // E_pm (over centroids) is never larger than the data-space MSE for
        // the same centroids plus intra-cluster scatter; just check both
        // are finite and ordered sensibly.
        assert!(row.data_mse.is_finite());
    }

    #[test]
    fn sweep_produces_three_algos_per_version() {
        let cfg = tiny();
        let rows = run_sweep(&cfg);
        assert_eq!(rows.len(), 6); // 1 size × 2 versions × 3 algorithms
        let means = mean_rows(&rows);
        assert_eq!(means.len(), 3);
        for m in &means {
            assert_eq!(m.versions, 2);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let cfg = tiny();
        let a = run_split(&cfg, 120, 1, 5);
        let b = run_split(&cfg, 120, 1, 5);
        assert_eq!(a.min_mse, b.min_mse);
        assert_eq!(a.data_mse, b.data_mse);
        assert_eq!(a.iterations, b.iterations);
    }
}
