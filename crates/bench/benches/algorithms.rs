//! Criterion microbench: one pass of every clustering algorithm in the
//! repo on the same 10,000-point paper-style cell (single restart each, so
//! the comparison is per-pass cost, not restart policy).

use criterion::{criterion_group, criterion_main, Criterion};
use pmkm_baselines::{
    birch, clarans, method_c, minibatch_kmeans, stream_lsearch, BirchConfig, ClaransConfig,
    MiniBatchConfig, StreamLsConfig,
};
use pmkm_core::{Dataset, KMeansConfig};
use pmkm_data::CellConfig;
use pmkm_stream::ops::fine_kmeans;

fn make_cell(n: usize) -> Dataset {
    pmkm_data::generator::generate_cell(&CellConfig::paper(n, 21)).expect("generator")
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms_n10k_k40");
    group.sample_size(10);
    let cell = make_cell(10_000);
    let kcfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(40, 5) };

    group.bench_function("kmeans", |b| b.iter(|| pmkm_core::kmeans(&cell, &kcfg).unwrap()));
    group.bench_function("partial_merge_10split", |b| {
        let pm = pmkm_core::PartialMergeConfig {
            kmeans: kcfg,
            partitions: pmkm_core::PartitionSpec::Count(10),
            ..pmkm_core::PartialMergeConfig::paper(40, 10, 5)
        };
        b.iter(|| pmkm_core::partial_merge(&cell, &pm).unwrap())
    });
    group.bench_function("fine_kmeans_2sorters", |b| {
        b.iter(|| fine_kmeans(&cell, &kcfg, 2).unwrap())
    });
    group.bench_function("method_c_2slaves", |b| b.iter(|| method_c(&cell, &kcfg, 2).unwrap()));
    group.bench_function("birch_t60", |b| {
        let cfg = BirchConfig { k: 40, threshold: 60.0, restarts: 1, ..BirchConfig::default() };
        b.iter(|| birch(&cell, &cfg).unwrap())
    });
    group.bench_function("stream_ls_10chunks", |b| {
        let cfg = StreamLsConfig { k: 40, max_retained: 480, swap_attempts: 100, seed: 5 };
        b.iter(|| stream_lsearch(&cell, 10, cfg).unwrap())
    });
    group.bench_function("clarans_250neighbors", |b| {
        let cfg = ClaransConfig { k: 40, num_local: 1, max_neighbors: 250, seed: 5 };
        b.iter(|| clarans(&cell, &cfg).unwrap())
    });
    group.bench_function("minibatch_40steps", |b| {
        let cfg = MiniBatchConfig { k: 40, batch_size: 256, steps: 40, seed: 5 };
        b.iter(|| minibatch_kmeans(&cell, &cfg).unwrap())
    });
    group.bench_function("ecvq_lambda100", |b| {
        let cfg =
            pmkm_core::ecvq::EcvqConfig { max_k: 40, lambda: 100.0, seed: 5, ..Default::default() };
        b.iter(|| pmkm_core::ecvq::ecvq(&cell, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
