//! Criterion microbench: grid-bucket serialization — full write/read round
//! trips, the streaming batch reader the scan operator uses, and the GB02
//! block container (writer per codec, reads across the backend × codec
//! matrix).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmkm_data::{
    gb02_to_bytes, BackendKind, BucketReader, CellConfig, Codec, Gb02Reader, GridBucket, GridCell,
};

fn bench_bucket_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_io");
    let n = 20_000usize;
    let points = pmkm_data::generator::generate_cell(&CellConfig::paper(n, 9)).expect("generator");
    let bucket = GridBucket { cell: GridCell::new(90, 180).unwrap(), points };
    let dir = std::env::temp_dir().join(format!("pmkm_bench_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.gb");
    bucket.write_to(&path).unwrap();
    let bytes = (n * 6 * 8) as u64;

    group.throughput(Throughput::Bytes(bytes));
    group.bench_function(BenchmarkId::new("encode", n), |b| b.iter(|| bucket.to_bytes()));
    let encoded = bucket.to_bytes();
    group.bench_function(BenchmarkId::new("decode", n), |b| {
        b.iter(|| GridBucket::from_bytes(&encoded).unwrap())
    });
    group.bench_function(BenchmarkId::new("write_file", n), |b| {
        b.iter(|| bucket.write_to(&path).unwrap())
    });
    group.bench_function(BenchmarkId::new("read_file", n), |b| {
        b.iter(|| GridBucket::read_from(&path).unwrap())
    });
    group.bench_function(BenchmarkId::new("stream_batches_4096", n), |b| {
        b.iter(|| {
            let mut r = BucketReader::open(&path).unwrap();
            let mut total = 0usize;
            while let Some(batch) = r.next_batch(4096).unwrap() {
                total += batch.as_flat().len();
            }
            assert_eq!(total, n * 6);
        })
    });

    // GB02 block container: the writer per codec, then every backend ×
    // codec read combination (block-at-a-time, the scan operator's access
    // pattern).
    for codec in Codec::ALL {
        group.bench_function(BenchmarkId::new(format!("gb02_encode_{codec}"), n), |b| {
            b.iter(|| gb02_to_bytes(&bucket, codec, 4096).unwrap())
        });
        let gb2_path = dir.join(format!("bench_{codec}.gb2"));
        pmkm_data::write_gb02(&bucket, &gb2_path, codec, 4096).unwrap();
        for backend in BackendKind::ALL {
            group.bench_function(
                BenchmarkId::new(format!("gb02_read_{codec}_{backend}"), n),
                |b| {
                    b.iter(|| {
                        let r = Gb02Reader::open_path(&gb2_path, backend).unwrap();
                        let mut total = 0usize;
                        for i in 0..r.n_blocks() {
                            total += r.read_block(i).unwrap().as_flat().len();
                        }
                        assert_eq!(total, n * 6);
                    })
                },
            );
        }
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_bucket_io);
criterion_main!(benches);
