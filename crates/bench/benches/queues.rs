//! Criterion microbench: smart-queue throughput — single producer to 1, 2
//! and 4 consumer clones, the engine's work-stealing substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmkm_stream::SmartQueue;
use std::thread;

fn pump(consumers: usize, items: u64) {
    let q: SmartQueue<u64> = SmartQueue::new("bench", 256);
    let p = q.producer();
    let handles: Vec<_> = (0..consumers)
        .map(|_| {
            let c = q.consumer();
            thread::spawn(move || {
                let mut acc = 0u64;
                while let Some(v) = c.recv() {
                    acc = acc.wrapping_add(v);
                }
                acc
            })
        })
        .collect();
    q.seal();
    for i in 0..items {
        p.send(i).unwrap();
    }
    drop(p);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).fold(0, u64::wrapping_add);
    assert_eq!(total, (0..items).fold(0u64, u64::wrapping_add));
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("smart_queue");
    let items = 100_000u64;
    group.throughput(Throughput::Elements(items));
    for consumers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("spmc", consumers), &consumers, |b, &consumers| {
            b.iter(|| pump(consumers, items))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
