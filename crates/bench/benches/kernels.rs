//! Criterion microbench: assignment-step kernels head to head on the
//! paper's fig. 6 workload (6-D MISR-like cells, k = 40).
//!
//! Two views of the same hot path:
//!
//! * `assign/*` — the raw assignment step (nearest centroid for every
//!   point), which is where the fused SoA kernel earns its keep,
//! * `lloyd/*` — five bounded Lloyd iterations end to end per selectable
//!   [`KernelKind`], so layout build + accumulator fusion are priced in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmkm_core::kernel::FusedLayout;
use pmkm_core::point::nearest_centroid;
use pmkm_core::seeding::{rng_for, seed_centroids};
use pmkm_core::{lloyd, Dataset, KernelKind, LloydConfig, PointSource, SeedMode};
use pmkm_data::CellConfig;

const K: usize = 40;

fn make_cell(n: usize) -> Dataset {
    pmkm_data::generator::generate_cell(&CellConfig::paper(n, 42)).expect("generator")
}

fn bench_assign(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign");
    for &n in &[1_000usize, 10_000] {
        let cell = make_cell(n);
        let init = seed_centroids(&cell, K, SeedMode::RandomPoints, &mut rng_for(7, 0)).unwrap();
        let cents = init.as_flat().to_vec();
        let dim = cell.dim();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("scalar_k40", n), &cell, |b, cell| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..cell.len() {
                    let (_, d) = nearest_centroid(cell.coords(i), &cents, dim);
                    acc += d;
                }
                acc
            })
        });

        group.bench_with_input(BenchmarkId::new("fused_k40", n), &cell, |b, cell| {
            b.iter(|| {
                // Layout build is part of the per-iteration cost.
                let layout = FusedLayout::new(&cents, dim);
                let mut scratch = vec![0.0; layout.scratch_len()];
                let mut acc = 0.0f64;
                for i in 0..cell.len() {
                    let (_, d) = layout.nearest(cell.coords(i), &mut scratch);
                    acc += d;
                }
                acc
            })
        });

        // Screen sweep without the rescue: the SIMD ceiling the fused
        // kernel works against.
        group.bench_with_input(BenchmarkId::new("screen_k40", n), &cell, |b, cell| {
            let layout = FusedLayout::new(&cents, dim);
            let mut scratch = vec![0.0; layout.scratch_len()];
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..cell.len() {
                    acc += layout.screen_only(cell.coords(i), &mut scratch);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_lloyd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("lloyd_kernels");
    let n = 10_000usize;
    let cell = make_cell(n);
    let init = seed_centroids(&cell, K, SeedMode::RandomPoints, &mut rng_for(7, 0)).unwrap();
    group.throughput(Throughput::Elements(n as u64));
    for kernel in [KernelKind::Scalar, KernelKind::Fused] {
        let cfg = LloydConfig { max_iters: 5, epsilon: 0.0, kernel, ..LloydConfig::default() };
        group.bench_with_input(
            BenchmarkId::new(format!("{}_5iters_k40", kernel.label()), n),
            &cell,
            |b, cell| b.iter(|| lloyd::lloyd(cell, &init, &cfg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assign, bench_lloyd_kernels);
criterion_main!(benches);
