//! Criterion microbench: serial k-means vs partial/merge (5- and 10-split)
//! on a paper-style cell — the head-to-head behind Table 2, at
//! microbenchmark scale with a single restart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmkm_core::{partial_merge, Dataset, KMeansConfig, PartialMergeConfig, PartitionSpec};
use pmkm_data::CellConfig;

fn make_cell(n: usize) -> Dataset {
    pmkm_data::generator::generate_cell(&CellConfig::paper(n, 7)).expect("generator")
}

fn bench_partial_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_merge");
    group.sample_size(10);
    let n = 10_000usize;
    let cell = make_cell(n);
    let kcfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(40, 3) };

    group.bench_function(BenchmarkId::new("serial_k40_r1", n), |b| {
        b.iter(|| pmkm_core::kmeans(&cell, &kcfg).unwrap())
    });
    for splits in [5usize, 10] {
        let pm = PartialMergeConfig {
            kmeans: kcfg,
            partitions: PartitionSpec::Count(splits),
            merge_mode: pmkm_core::MergeMode::Collective,
            merge_restarts: 1,
            slicing: pmkm_core::SliceStrategy::RandomOverlap,
        };
        group.bench_function(BenchmarkId::new(format!("{splits}split_k40_r1"), n), |b| {
            b.iter(|| partial_merge(&cell, &pm).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partial_merge);
criterion_main!(benches);
