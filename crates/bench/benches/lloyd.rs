//! Criterion microbench: the Lloyd assignment/recalculation core — the
//! inner loop all experiments stand on. Measures one bounded run over cell
//! sizes and the serial vs rayon-parallel assignment path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmkm_core::seeding::{rng_for, seed_centroids};
use pmkm_core::{lloyd, Dataset, LloydConfig, SeedMode};
use pmkm_data::CellConfig;

fn make_cell(n: usize) -> Dataset {
    pmkm_data::generator::generate_cell(&CellConfig::paper(n, 42)).expect("generator")
}

fn bench_lloyd(c: &mut Criterion) {
    let mut group = c.benchmark_group("lloyd");
    for &n in &[1_000usize, 10_000] {
        let cell = make_cell(n);
        let init = seed_centroids(&cell, 40, SeedMode::RandomPoints, &mut rng_for(7, 0)).unwrap();
        // Bounded iterations so the bench measures per-iteration cost, not
        // data-dependent convergence length.
        let cfg = LloydConfig { max_iters: 5, epsilon: 0.0, ..LloydConfig::default() };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("serial_5iters_k40", n), &cell, |b, cell| {
            b.iter(|| lloyd::lloyd(cell, &init, &cfg).unwrap())
        });
        let par = LloydConfig { parallel_assign: true, ..cfg };
        group.bench_with_input(BenchmarkId::new("parallel_5iters_k40", n), &cell, |b, cell| {
            b.iter(|| lloyd::lloyd(cell, &init, &par).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lloyd);
criterion_main!(benches);
