//! Distance primitives on raw coordinate slices.
//!
//! The paper clusters D-dimensional metric vectors under the Euclidean
//! distance `dis(c, v) = (Σ_d (c_d − v_d)²)^½`. Everything in this crate
//! works on squared distances internally (monotone in the true distance, so
//! nearest-centroid decisions are identical) and only takes the square root
//! at reporting boundaries.

/// Squared Euclidean distance between two equal-length coordinate slices.
///
/// Panics in debug builds if the slices differ in length; callers in this
/// crate guarantee equal dimensionality through [`crate::dataset::Dataset`].
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance (the paper's `dis`).
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Index of the centroid (given as a flat `k × dim` slice) nearest to
/// `point`, together with the squared distance to it.
///
/// Ties are broken toward the lower index, matching a sequential scan —
/// this makes all assignment code deterministic for identical inputs.
#[inline]
pub fn nearest_centroid(point: &[f64], centroids: &[f64], dim: usize) -> (usize, f64) {
    debug_assert_eq!(point.len(), dim);
    debug_assert!(!centroids.is_empty() && centroids.len().is_multiple_of(dim));
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.chunks_exact(dim).enumerate() {
        let d = sq_dist(point, c);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    (best, best_d)
}

/// How many dimensions accumulate between prune checks. Checking after
/// *every* dimension (the obvious formulation) puts a data-dependent
/// branch inside the innermost loop and costs more than it saves — the
/// `lloyd` bench measured it at roughly half the naive scan's throughput.
/// A blocked check keeps the inner loop branch-free and pipelined while
/// still abandoning hopeless candidates early.
const PRUNE_BLOCK: usize = 4;

/// Like [`nearest_centroid`], with *partial-distance pruning*: the
/// per-dimension accumulation of a candidate is abandoned once a prefix of
/// it already exceeds the best distance so far, checked every
/// [`PRUNE_BLOCK`] dimensions. Exact — it returns bit-identical results to
/// the naive scan (the accumulation order is unchanged and a candidate is
/// only abandoned when strictly worse, which a longer prefix can only
/// confirm) — but skips most of the arithmetic once a good candidate is
/// found. This is the kind of "improved search mechanism for finding the
/// nearest centroid" the paper's §4 explicitly leaves out; the `lloyd`
/// bench measures what it buys.
#[inline]
pub fn nearest_centroid_pruned(point: &[f64], centroids: &[f64], dim: usize) -> (usize, f64) {
    debug_assert_eq!(point.len(), dim);
    debug_assert!(!centroids.is_empty() && centroids.len().is_multiple_of(dim));
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.chunks_exact(dim).enumerate() {
        let mut acc = 0.0;
        let mut pruned = false;
        let mut i = 0;
        while i < dim {
            let end = (i + PRUNE_BLOCK).min(dim);
            while i < end {
                let d = point[i] - c[i];
                acc += d * d;
                i += 1;
            }
            if acc > best_d {
                pruned = true;
                break;
            }
        }
        if !pruned && acc < best_d {
            best_d = acc;
            best = j;
        }
    }
    (best, best_d)
}

/// Tally of how often partial-distance pruning fired, accumulated by
/// [`nearest_centroid_pruned_counted`] when an observability recorder is
/// attached to the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Centroid candidates examined (one per point × centroid pair).
    pub candidates: u64,
    /// Candidates abandoned before the full `dim` accumulation finished.
    pub pruned: u64,
}

impl PruneStats {
    /// Fraction of candidates that were pruned (`0.0` when none were seen).
    pub fn hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }
}

/// [`nearest_centroid_pruned`] with bookkeeping: tallies into `stats` how
/// many candidates were examined and how many were abandoned early. Same
/// decisions, same distances — only the counting differs.
#[inline]
pub fn nearest_centroid_pruned_counted(
    point: &[f64],
    centroids: &[f64],
    dim: usize,
    stats: &mut PruneStats,
) -> (usize, f64) {
    debug_assert_eq!(point.len(), dim);
    debug_assert!(!centroids.is_empty() && centroids.len().is_multiple_of(dim));
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.chunks_exact(dim).enumerate() {
        stats.candidates += 1;
        let mut acc = 0.0;
        let mut pruned = false;
        let mut i = 0;
        while i < dim {
            let end = (i + PRUNE_BLOCK).min(dim);
            while i < end {
                let d = point[i] - c[i];
                acc += d * d;
                i += 1;
            }
            if acc > best_d {
                pruned = true;
                break;
            }
        }
        if pruned {
            stats.pruned += 1;
        } else if acc < best_d {
            best_d = acc;
            best = j;
        }
    }
    (best, best_d)
}

/// True if every coordinate is finite (no NaN / ±inf).
#[inline]
pub fn all_finite(coords: &[f64]) -> bool {
    coords.iter().all(|c| c.is_finite())
}

/// Position of the first non-finite coordinate, if any.
#[inline]
pub fn first_non_finite(coords: &[f64]) -> Option<usize> {
    coords.iter().position(|c| !c.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_dist_matches_hand_computation() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn sq_dist_zero_for_identical_points() {
        let p = [1.5, -2.5, 3.25, 0.0];
        assert_eq!(sq_dist(&p, &p), 0.0);
    }

    #[test]
    fn sq_dist_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-4.0, 0.5, 9.0];
        assert_eq!(sq_dist(&a, &b), sq_dist(&b, &a));
    }

    #[test]
    fn nearest_centroid_picks_closest() {
        // Two centroids in 2-D: (0,0) and (10,10).
        let cents = [0.0, 0.0, 10.0, 10.0];
        assert_eq!(nearest_centroid(&[1.0, 1.0], &cents, 2).0, 0);
        assert_eq!(nearest_centroid(&[9.0, 9.0], &cents, 2).0, 1);
    }

    #[test]
    fn nearest_centroid_tie_breaks_low_index() {
        let cents = [-1.0, 0.0, 1.0, 0.0];
        let (idx, d) = nearest_centroid(&[0.0, 0.0], &cents, 2);
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn nearest_centroid_single_cluster() {
        let cents = [5.0, 5.0];
        let (idx, d) = nearest_centroid(&[5.0, 6.0], &cents, 2);
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn pruned_matches_naive_exactly() {
        use rand::Rng;
        let mut rng = crate::seeding::rng_for(3, 0);
        for _ in 0..200 {
            let dim = rng.gen_range(1usize..8);
            let k = rng.gen_range(1usize..12);
            let point: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let cents: Vec<f64> = (0..k * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let naive = nearest_centroid(&point, &cents, dim);
            let pruned = nearest_centroid_pruned(&point, &cents, dim);
            assert_eq!(naive.0, pruned.0);
            assert_eq!(naive.1, pruned.1);
        }
    }

    #[test]
    fn pruned_handles_duplicate_centroids() {
        let cents = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let (j, d) = nearest_centroid_pruned(&[1.0, 1.0], &cents, 2);
        assert_eq!(j, 0); // first of the duplicates wins, like the naive scan
        assert_eq!(d, 0.0);
    }

    #[test]
    fn counted_pruned_matches_uncounted_and_tallies() {
        use rand::Rng;
        let mut rng = crate::seeding::rng_for(7, 0);
        let dim = 4usize;
        let k = 10usize;
        let cents: Vec<f64> = (0..k * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let mut stats = PruneStats::default();
        for _ in 0..100 {
            let point: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let plain = nearest_centroid_pruned(&point, &cents, dim);
            let counted = nearest_centroid_pruned_counted(&point, &cents, dim, &mut stats);
            assert_eq!(plain, counted);
        }
        assert_eq!(stats.candidates, 100 * k as u64);
        assert!(stats.pruned > 0, "expected some pruning on random data");
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[0.0, 1.0, -1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(!all_finite(&[f64::NEG_INFINITY, 0.0]));
        assert!(all_finite(&[]));
    }
}
