//! Distance primitives on raw coordinate slices.
//!
//! The paper clusters D-dimensional metric vectors under the Euclidean
//! distance `dis(c, v) = (Σ_d (c_d − v_d)²)^½`. Everything in this crate
//! works on squared distances internally (monotone in the true distance, so
//! nearest-centroid decisions are identical) and only takes the square root
//! at reporting boundaries.

/// Squared Euclidean distance between two equal-length coordinate slices.
///
/// Panics in debug builds if the slices differ in length; callers in this
/// crate guarantee equal dimensionality through [`crate::dataset::Dataset`].
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance (the paper's `dis`).
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Index of the centroid (given as a flat `k × dim` slice) nearest to
/// `point`, together with the squared distance to it.
///
/// Ties are broken toward the lower index, matching a sequential scan —
/// this makes all assignment code deterministic for identical inputs.
#[inline]
pub fn nearest_centroid(point: &[f64], centroids: &[f64], dim: usize) -> (usize, f64) {
    debug_assert_eq!(point.len(), dim);
    debug_assert!(!centroids.is_empty() && centroids.len().is_multiple_of(dim));
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.chunks_exact(dim).enumerate() {
        let d = sq_dist(point, c);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    (best, best_d)
}

/// True if every coordinate is finite (no NaN / ±inf).
#[inline]
pub fn all_finite(coords: &[f64]) -> bool {
    coords.iter().all(|c| c.is_finite())
}

/// Position of the first non-finite coordinate, if any.
#[inline]
pub fn first_non_finite(coords: &[f64]) -> Option<usize> {
    coords.iter().position(|c| !c.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_dist_matches_hand_computation() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn sq_dist_zero_for_identical_points() {
        let p = [1.5, -2.5, 3.25, 0.0];
        assert_eq!(sq_dist(&p, &p), 0.0);
    }

    #[test]
    fn sq_dist_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-4.0, 0.5, 9.0];
        assert_eq!(sq_dist(&a, &b), sq_dist(&b, &a));
    }

    #[test]
    fn nearest_centroid_picks_closest() {
        // Two centroids in 2-D: (0,0) and (10,10).
        let cents = [0.0, 0.0, 10.0, 10.0];
        assert_eq!(nearest_centroid(&[1.0, 1.0], &cents, 2).0, 0);
        assert_eq!(nearest_centroid(&[9.0, 9.0], &cents, 2).0, 1);
    }

    #[test]
    fn nearest_centroid_tie_breaks_low_index() {
        let cents = [-1.0, 0.0, 1.0, 0.0];
        let (idx, d) = nearest_centroid(&[0.0, 0.0], &cents, 2);
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn nearest_centroid_single_cluster() {
        let cents = [5.0, 5.0];
        let (idx, d) = nearest_centroid(&[5.0, 6.0], &cents, 2);
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[0.0, 1.0, -1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(!all_finite(&[f64::NEG_INFINITY, 0.0]));
        assert!(all_finite(&[]));
    }
}
