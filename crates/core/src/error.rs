//! Error type shared by all `pmkm-core` entry points.

use std::fmt;

/// Errors produced by clustering configuration or input validation.
///
/// All algorithmic entry points validate their inputs eagerly and return
/// `Err` instead of panicking, so harnesses can sweep degenerate
/// configurations (empty cells, k larger than the cell) without crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input data set contains no points.
    EmptyDataset,
    /// `k` was zero.
    ZeroK,
    /// `k` exceeds the number of available (distinct) input points.
    KExceedsPoints {
        /// The requested number of clusters.
        k: usize,
        /// The number of points actually available.
        points: usize,
    },
    /// Two inputs that must share a dimensionality do not.
    DimensionMismatch {
        /// Dimensionality required by the receiver.
        expected: usize,
        /// Dimensionality of the offending input.
        actual: usize,
    },
    /// A point with a non-finite coordinate was encountered.
    NonFiniteCoordinate {
        /// Index of the offending point.
        index: usize,
    },
    /// A weighted input carried a non-positive or non-finite weight.
    InvalidWeight {
        /// Index of the offending weighted point.
        index: usize,
    },
    /// The requested partitioning is impossible (zero partitions or a
    /// memory budget too small to hold a single point).
    InvalidPartitioning(String),
    /// Configuration field out of range (e.g. zero restarts).
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDataset => write!(f, "input data set is empty"),
            Error::ZeroK => write!(f, "k must be at least 1"),
            Error::KExceedsPoints { k, points } => {
                write!(f, "k = {k} exceeds the {points} available input points")
            }
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::NonFiniteCoordinate { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
            Error::InvalidWeight { index } => {
                write!(f, "weighted point {index} has a non-positive or non-finite weight")
            }
            Error::InvalidPartitioning(msg) => write!(f, "invalid partitioning: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = Error::KExceedsPoints { k: 40, points: 7 };
        assert_eq!(e.to_string(), "k = 40 exceeds the 7 available input points");
        let e = Error::DimensionMismatch { expected: 6, actual: 3 };
        assert!(e.to_string().contains("expected 6"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::ZeroK, Error::ZeroK);
        assert_ne!(Error::ZeroK, Error::EmptyDataset);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(Error::EmptyDataset);
        assert_eq!(e.to_string(), "input data set is empty");
    }
}
