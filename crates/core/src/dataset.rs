//! In-memory point collections.
//!
//! Points are stored row-major in one flat `Vec<f64>` — the layout the Lloyd
//! inner loop wants (sequential scans, no per-point allocation). Three
//! concrete containers share the [`PointSource`] abstraction:
//!
//! * [`Dataset`] — plain, unit-weight points (a grid cell or one chunk of it),
//! * [`WeightedSet`] — weighted points; this is what the *partial* step emits
//!   (centroid + count) and what the *merge* step consumes,
//! * [`Centroids`] — a bare `k × dim` centroid table, the algorithm output.

use crate::error::{Error, Result};
use crate::point::{all_finite, first_non_finite};
use serde::{Deserialize, Serialize};

/// Read access to a (possibly weighted) collection of D-dimensional points.
///
/// The unweighted case reports weight `1.0` for every point; the generic
/// Lloyd implementation in [`crate::lloyd::lloyd`] then computes the paper's
/// unweighted k-means and weighted merge k-means from the same code, which is
/// exactly the property the paper stipulates ("the code for the serial and
/// the partial k-means implementation are identical besides that the partial
/// k-means generates weighted centroids").
pub trait PointSource: Sync {
    /// Dimensionality of every point.
    fn dim(&self) -> usize;
    /// Number of points.
    fn len(&self) -> usize;
    /// Coordinates of point `i`.
    fn coords(&self, i: usize) -> &[f64];
    /// Weight of point `i` (1.0 for plain datasets).
    fn weight(&self, i: usize) -> f64;
    /// Sum of all weights (number of points for plain datasets).
    fn total_weight(&self) -> f64;
    /// True if there are no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A flat, row-major collection of unit-weight points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidConfig("dimension must be at least 1".into()));
        }
        Ok(Self { dim, data: Vec::new() })
    }

    /// Creates an empty dataset with room for `points` points.
    pub fn with_capacity(dim: usize, points: usize) -> Result<Self> {
        let mut ds = Self::new(dim)?;
        ds.data.reserve(points * dim);
        Ok(ds)
    }

    /// Wraps an existing flat buffer. `data.len()` must be a multiple of
    /// `dim` and every coordinate must be finite — a NaN or ±inf smuggled in
    /// here would silently poison every centroid it ever touches.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidConfig("dimension must be at least 1".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim });
        }
        if let Some(bad) = first_non_finite(&data) {
            return Err(Error::NonFiniteCoordinate { index: bad / dim });
        }
        Ok(Self { dim, data })
    }

    /// [`from_flat`](Self::from_flat) without the finiteness check.
    ///
    /// Exists solely so fault-injection harnesses can manufacture the
    /// NaN-poisoned chunks the stream engine must quarantine; production
    /// readers go through the checked constructors. Shape is still
    /// validated — only the per-coordinate finiteness scan is skipped.
    pub fn from_flat_unchecked(dim: usize, data: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidConfig("dimension must be at least 1".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim });
        }
        Ok(Self { dim, data })
    }

    /// Builds a dataset from per-point rows; all rows must share a length.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        let dim = rows.first().map(|r| r.as_ref().len()).unwrap_or(0);
        if dim == 0 {
            return Err(Error::EmptyDataset);
        }
        let mut ds = Self::with_capacity(dim, rows.len())?;
        for row in rows {
            ds.push(row.as_ref())?;
        }
        Ok(ds)
    }

    /// Appends one point.
    pub fn push(&mut self, coords: &[f64]) -> Result<()> {
        if coords.len() != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, actual: coords.len() });
        }
        if !all_finite(coords) {
            return Err(Error::NonFiniteCoordinate { index: self.len() });
        }
        self.data.extend_from_slice(coords);
        Ok(())
    }

    /// Appends every point of `other` (same dimensionality required).
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if other.dim != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, actual: other.dim });
        }
        self.data.extend_from_slice(&other.data);
        Ok(())
    }

    /// The underlying flat `n × dim` buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the dataset, returning the flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over points as slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Splits into `p` near-equal chunks by round-robin dealing.
    ///
    /// The paper distributes a cell's points randomly over 5 or 10 "chunks";
    /// callers that want a shuffled deal shuffle first (see
    /// [`crate::partial::partition_random`]). Round-robin keeps chunk sizes
    /// within one point of each other, matching the paper's "about
    /// equal-sized chunks".
    pub fn split_round_robin(&self, p: usize) -> Result<Vec<Dataset>> {
        if p == 0 {
            return Err(Error::InvalidPartitioning("zero partitions".into()));
        }
        let mut parts: Vec<Dataset> = (0..p)
            .map(|i| {
                // Chunk i receives ceil((n - i) / p) points.
                let cap = (self.len() + p - 1 - i) / p;
                Dataset { dim: self.dim, data: Vec::with_capacity(cap * self.dim) }
            })
            .collect();
        for (i, pt) in self.iter().enumerate() {
            parts[i % p].data.extend_from_slice(pt);
        }
        Ok(parts)
    }

    /// Approximate heap footprint of the point payload, in bytes.
    ///
    /// The stream optimizer uses this to decide how many points fit a memory
    /// budget (`points × dim × 8`).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl PointSource for Dataset {
    fn dim(&self) -> usize {
        self.dim
    }
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }
    fn coords(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
    fn weight(&self, _i: usize) -> f64 {
        1.0
    }
    fn total_weight(&self) -> f64 {
        self.len() as f64
    }
}

/// A collection of weighted points (the partial step's output: one weighted
/// centroid per cluster per chunk, weight = points assigned to it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedSet {
    dim: usize,
    coords: Vec<f64>,
    weights: Vec<f64>,
}

impl WeightedSet {
    /// Creates an empty weighted set.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidConfig("dimension must be at least 1".into()));
        }
        Ok(Self { dim, coords: Vec::new(), weights: Vec::new() })
    }

    /// Appends a weighted point. Weights must be positive and finite.
    pub fn push(&mut self, coords: &[f64], weight: f64) -> Result<()> {
        if coords.len() != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, actual: coords.len() });
        }
        if !all_finite(coords) {
            return Err(Error::NonFiniteCoordinate { index: self.len() });
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(Error::InvalidWeight { index: self.len() });
        }
        self.coords.extend_from_slice(coords);
        self.weights.push(weight);
        Ok(())
    }

    /// Appends all points of another weighted set (the merge operator's
    /// "collective" gather of every chunk's centroids).
    pub fn extend_from(&mut self, other: &WeightedSet) -> Result<()> {
        if other.dim != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, actual: other.dim });
        }
        self.coords.extend_from_slice(&other.coords);
        self.weights.extend_from_slice(&other.weights);
        Ok(())
    }

    /// Per-point weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Flat coordinate buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates `(coords, weight)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&[f64], f64)> {
        self.coords.chunks_exact(self.dim).zip(self.weights.iter().copied())
    }

    /// Scales every weight by a positive finite factor (exponential-decay
    /// coreset trees age all live mass by λ per arriving chunk).
    ///
    /// # Errors
    /// [`Error::InvalidWeight`] if the factor is not finite and positive.
    pub fn scale_weights(&mut self, factor: f64) -> Result<()> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(Error::InvalidWeight { index: 0 });
        }
        for w in &mut self.weights {
            *w *= factor;
        }
        Ok(())
    }

    /// Treats every point of a plain dataset as weight-1.
    pub fn from_dataset(ds: &Dataset) -> Self {
        Self { dim: ds.dim(), coords: ds.as_flat().to_vec(), weights: vec![1.0; ds.len()] }
    }
}

impl PointSource for WeightedSet {
    fn dim(&self) -> usize {
        self.dim
    }
    fn len(&self) -> usize {
        self.weights.len()
    }
    fn coords(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }
    fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
    fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// A `k × dim` centroid table: the output of any k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Centroids {
    dim: usize,
    data: Vec<f64>,
}

impl Centroids {
    /// Wraps a flat `k × dim` buffer. Every coordinate must be finite.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidConfig("dimension must be at least 1".into()));
        }
        if data.is_empty() || !data.len().is_multiple_of(dim) {
            return Err(Error::InvalidConfig(format!(
                "centroid buffer of {} floats is not a non-empty multiple of dim {}",
                data.len(),
                dim
            )));
        }
        if let Some(bad) = first_non_finite(&data) {
            return Err(Error::NonFiniteCoordinate { index: bad / dim });
        }
        Ok(Self { dim, data })
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centroid `j` as a slice.
    pub fn centroid(&self, j: usize) -> &[f64] {
        &self.data[j * self.dim..(j + 1) * self.dim]
    }

    /// Flat buffer (`k × dim`).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer, for in-place centroid recalculation.
    pub(crate) fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over centroids.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds2(rows: &[[f64; 2]]) -> Dataset {
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn dataset_push_and_index() {
        let mut ds = Dataset::new(3).unwrap();
        ds.push(&[1.0, 2.0, 3.0]).unwrap();
        ds.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.coords(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.total_weight(), 2.0);
        assert_eq!(ds.weight(0), 1.0);
    }

    #[test]
    fn dataset_rejects_wrong_dim() {
        let mut ds = Dataset::new(2).unwrap();
        assert_eq!(ds.push(&[1.0]), Err(Error::DimensionMismatch { expected: 2, actual: 1 }));
    }

    #[test]
    fn dataset_rejects_nan() {
        let mut ds = Dataset::new(2).unwrap();
        assert_eq!(ds.push(&[f64::NAN, 0.0]), Err(Error::NonFiniteCoordinate { index: 0 }));
    }

    #[test]
    fn dataset_rejects_zero_dim() {
        assert!(Dataset::new(0).is_err());
        assert!(Dataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn from_flat_validates_multiple() {
        assert!(Dataset::from_flat(3, vec![1.0; 7]).is_err());
        let ds = Dataset::from_flat(3, vec![1.0; 9]).unwrap();
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn from_rows_empty_is_error() {
        let rows: Vec<[f64; 2]> = vec![];
        assert_eq!(Dataset::from_rows(&rows), Err(Error::EmptyDataset));
    }

    #[test]
    fn split_round_robin_deals_evenly() {
        let ds = ds2(&[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [4.0, 4.0]]);
        let parts = ds.split_round_robin(2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 3); // points 0, 2, 4
        assert_eq!(parts[1].len(), 2); // points 1, 3
        assert_eq!(parts[0].coords(1), &[2.0, 2.0]);
        assert_eq!(parts[1].coords(0), &[1.0, 1.0]);
    }

    #[test]
    fn split_round_robin_more_parts_than_points() {
        let ds = ds2(&[[1.0, 1.0], [2.0, 2.0]]);
        let parts = ds.split_round_robin(5).unwrap();
        assert_eq!(parts.len(), 5);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn split_round_robin_sizes_within_one() {
        let ds = Dataset::from_flat(1, (0..103).map(|i| i as f64).collect()).unwrap();
        for p in 1..=12 {
            let parts = ds.split_round_robin(p).unwrap();
            let total: usize = parts.iter().map(|c| c.len()).sum();
            assert_eq!(total, 103);
            let min = parts.iter().map(|c| c.len()).min().unwrap();
            let max = parts.iter().map(|c| c.len()).max().unwrap();
            assert!(max - min <= 1, "p={p}: sizes spread {min}..{max}");
        }
    }

    #[test]
    fn split_zero_partitions_is_error() {
        let ds = ds2(&[[0.0, 0.0]]);
        assert!(ds.split_round_robin(0).is_err());
    }

    #[test]
    fn weighted_set_accumulates_weight() {
        let mut ws = WeightedSet::new(2).unwrap();
        ws.push(&[0.0, 0.0], 3.0).unwrap();
        ws.push(&[1.0, 1.0], 2.0).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.total_weight(), 5.0);
        assert_eq!(ws.weight(0), 3.0);
        assert_eq!(ws.coords(1), &[1.0, 1.0]);
    }

    #[test]
    fn weighted_set_rejects_bad_weight() {
        let mut ws = WeightedSet::new(2).unwrap();
        assert_eq!(ws.push(&[0.0, 0.0], 0.0), Err(Error::InvalidWeight { index: 0 }));
        assert_eq!(ws.push(&[0.0, 0.0], -1.0), Err(Error::InvalidWeight { index: 0 }));
        assert_eq!(ws.push(&[0.0, 0.0], f64::NAN), Err(Error::InvalidWeight { index: 0 }));
        assert_eq!(ws.push(&[0.0, 0.0], f64::INFINITY), Err(Error::InvalidWeight { index: 0 }));
    }

    #[test]
    fn weighted_set_extend_concatenates() {
        let mut a = WeightedSet::new(2).unwrap();
        a.push(&[0.0, 0.0], 1.0).unwrap();
        let mut b = WeightedSet::new(2).unwrap();
        b.push(&[1.0, 1.0], 4.0).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_weight(), 5.0);
    }

    #[test]
    fn weighted_from_dataset_has_unit_weights() {
        let ds = ds2(&[[1.0, 2.0], [3.0, 4.0]]);
        let ws = WeightedSet::from_dataset(&ds);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.weights(), &[1.0, 1.0]);
        assert_eq!(ws.coords(1), ds.coords(1));
    }

    #[test]
    fn centroids_accessors() {
        let c = Centroids::from_flat(2, vec![0.0, 0.0, 5.0, 5.0]).unwrap();
        assert_eq!(c.k(), 2);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.centroid(1), &[5.0, 5.0]);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn centroids_reject_empty_or_ragged() {
        assert!(Centroids::from_flat(2, vec![]).is_err());
        assert!(Centroids::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
    }
}
