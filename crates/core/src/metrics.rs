//! Clustering-quality metrics.
//!
//! The paper reports two error functions and compares their "MSE" values
//! across algorithms:
//!
//! * `E = Σ_k Σ_{v∈C_k} ‖µ_k − v‖²` for plain k-means (§2),
//! * `E_pm = Σ_k Σ_{c_i∈C_k} ‖µ_k − c_i‖² · w_i` for the merged
//!   representation (§3.3).
//!
//! Both are the weighted SSE of a point source against a centroid table,
//! which is what [`weighted_sse_against`] computes. [`evaluate`] bundles
//! the numbers a harness wants in one pass.

use crate::dataset::{Centroids, PointSource};
use crate::error::{Error, Result};
use crate::point::nearest_centroid;
use serde::{Deserialize, Serialize};

/// One-pass evaluation of a centroid table against a point source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Weighted sum of squared nearest-centroid distances (`E` / `E_pm`).
    pub sse: f64,
    /// `sse / total_weight`.
    pub mse: f64,
    /// Weight captured by each centroid.
    pub cluster_weights: Vec<f64>,
    /// Number of centroids that attracted no weight.
    pub empty_clusters: usize,
    /// Largest single squared distance (worst-case quantization error).
    pub max_sq_dist: f64,
}

/// Weighted SSE of `src` against `centroids` (each point charged to its
/// nearest centroid). This is the paper's `E` for unit weights and `E_pm`
/// for weighted centroid sets.
pub fn weighted_sse_against<S: PointSource + ?Sized>(
    src: &S,
    centroids: &Centroids,
) -> Result<f64> {
    Ok(evaluate(src, centroids)?.sse)
}

/// Mean squared error of `src` against `centroids` (weighted SSE divided by
/// the total weight).
pub fn mse_against<S: PointSource + ?Sized>(src: &S, centroids: &Centroids) -> Result<f64> {
    Ok(evaluate(src, centroids)?.mse)
}

/// Full one-pass evaluation. Errors on dimension mismatch or empty input.
pub fn evaluate<S: PointSource + ?Sized>(src: &S, centroids: &Centroids) -> Result<Evaluation> {
    if src.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if centroids.dim() != src.dim() {
        return Err(Error::DimensionMismatch { expected: src.dim(), actual: centroids.dim() });
    }
    let dim = src.dim();
    let flat = centroids.as_flat();
    let mut cluster_weights = vec![0.0; centroids.k()];
    let mut sse = 0.0;
    let mut max_sq = 0.0f64;
    for i in 0..src.len() {
        let (j, d2) = nearest_centroid(src.coords(i), flat, dim);
        let w = src.weight(i);
        cluster_weights[j] += w;
        sse += w * d2;
        if d2 > max_sq {
            max_sq = d2;
        }
    }
    let total = src.total_weight();
    let empty_clusters = cluster_weights.iter().filter(|&&w| w == 0.0).count();
    Ok(Evaluation { sse, mse: sse / total, cluster_weights, empty_clusters, max_sq_dist: max_sq })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, WeightedSet};

    #[test]
    fn sse_of_perfect_centroids_is_zero() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [5.0, 5.0]]).unwrap();
        let c = Centroids::from_flat(2, vec![0.0, 0.0, 5.0, 5.0]).unwrap();
        let ev = evaluate(&ds, &c).unwrap();
        assert_eq!(ev.sse, 0.0);
        assert_eq!(ev.mse, 0.0);
        assert_eq!(ev.max_sq_dist, 0.0);
        assert_eq!(ev.empty_clusters, 0);
        assert_eq!(ev.cluster_weights, vec![1.0, 1.0]);
    }

    #[test]
    fn sse_matches_hand_computation() {
        // Points 0 and 2 against a single centroid at 1: SSE = 1 + 1.
        let ds = Dataset::from_rows(&[[0.0], [2.0]]).unwrap();
        let c = Centroids::from_flat(1, vec![1.0]).unwrap();
        let ev = evaluate(&ds, &c).unwrap();
        assert_eq!(ev.sse, 2.0);
        assert_eq!(ev.mse, 1.0);
        assert_eq!(ev.max_sq_dist, 1.0);
    }

    #[test]
    fn weighted_epm_charges_weights() {
        // E_pm = Σ w_i · ‖c_i − µ‖²: centroid at 0, points (1, w=2), (3, w=1).
        let mut ws = WeightedSet::new(1).unwrap();
        ws.push(&[1.0], 2.0).unwrap();
        ws.push(&[3.0], 1.0).unwrap();
        let c = Centroids::from_flat(1, vec![0.0]).unwrap();
        assert_eq!(weighted_sse_against(&ws, &c).unwrap(), 2.0 + 9.0);
        assert!((mse_against(&ws, &c).unwrap() - 11.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn counts_empty_clusters() {
        let ds = Dataset::from_rows(&[[0.0], [0.1]]).unwrap();
        let c = Centroids::from_flat(1, vec![0.0, 100.0, 200.0]).unwrap();
        let ev = evaluate(&ds, &c).unwrap();
        assert_eq!(ev.empty_clusters, 2);
        assert_eq!(ev.cluster_weights, vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let ds = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        let c = Centroids::from_flat(1, vec![0.0]).unwrap();
        assert!(evaluate(&ds, &c).is_err());
    }

    #[test]
    fn empty_source_is_error() {
        let ds = Dataset::new(2).unwrap();
        let c = Centroids::from_flat(2, vec![0.0, 0.0]).unwrap();
        assert_eq!(evaluate(&ds, &c), Err(Error::EmptyDataset));
    }
}
