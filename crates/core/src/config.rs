//! Configuration types for every clustering entry point.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// The paper's convergence threshold: stop when
/// `MSE(n−1) − MSE(n) ≤ 1 × 10⁻⁹` (§2, §3.3).
pub const PAPER_EPSILON: f64 = 1e-9;

/// Default safety cap on Lloyd iterations. The paper relies purely on the
/// MSE delta; the cap exists so adversarial inputs can't spin forever, and
/// results record whether it was hit.
pub const DEFAULT_MAX_ITERS: usize = 10_000;

/// Which nearest-centroid strategy drives the Lloyd assignment step.
///
/// Every kind is **exact**: they all produce the same assignments (and the
/// same bit-level distances) as the naive scalar scan — the differential
/// test suite in `tests/kernel_differential.rs` pins this. They differ only
/// in how much arithmetic they spend getting there; DESIGN.md §9 discusses
/// when each wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelKind {
    /// Pick automatically: always the fused SoA kernel. (A pruned scalar
    /// scan existed historically but measured 0.81× the plain scalar scan
    /// on the kernel-speedup workloads and was removed; `KernelKind` keeps
    /// only strategies that earn their maintenance.)
    #[default]
    Auto,
    /// The naive AoS scalar scan ([`crate::point::nearest_centroid`]) —
    /// the paper's §4 prototype behaviour, kept for timing mirrors.
    Scalar,
    /// The fused, cache-blocked SoA kernel ([`crate::kernel::FusedLayout`]):
    /// `‖x−c‖²` via the norm expansion over 8-lane centroid blocks, with an
    /// exact rescue pass, and the weighted accumulator updates fused into
    /// the same per-point loop.
    Fused,
}

impl KernelKind {
    /// Human-readable label used in metric names and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::Scalar => "scalar",
            KernelKind::Fused => "fused",
        }
    }

    /// Inverse of [`Self::label`], for CLI/config parsing. Returns `None`
    /// for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(KernelKind::Auto),
            "scalar" => Some(KernelKind::Scalar),
            "fused" => Some(KernelKind::Fused),
            _ => None,
        }
    }
}

/// Controls a single Lloyd (k-means) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LloydConfig {
    /// Convergence threshold on the MSE decrease between iterations.
    pub epsilon: f64,
    /// Hard iteration cap (safety valve; `converged == false` when hit).
    pub max_iters: usize,
    /// Use rayon to parallelize the assignment step within one run.
    ///
    /// Off by default: the paper parallelizes by *cloning operators across
    /// chunks*, not within a run, and the experiment harnesses keep this off
    /// so per-run timings mirror the paper's single-threaded operators.
    pub parallel_assign: bool,
    /// Historical flag that selected the (since removed) pruned scalar
    /// scan. Now a no-op: every kernel is exact, so configs that set it
    /// still deserialize and produce bit-identical results through the
    /// fused kernel. Kept only so persisted configs keep loading.
    pub pruned_assign: bool,
    /// Assignment-step strategy. [`KernelKind::Auto`] (the default)
    /// resolves to the fused SoA kernel — bit-identical results, just
    /// faster.
    pub kernel: KernelKind,
}

impl Default for LloydConfig {
    fn default() -> Self {
        Self {
            epsilon: PAPER_EPSILON,
            max_iters: DEFAULT_MAX_ITERS,
            parallel_assign: false,
            pruned_assign: false,
            kernel: KernelKind::Auto,
        }
    }
}

impl LloydConfig {
    /// Validates field ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(Error::InvalidConfig("epsilon must be finite and >= 0".into()));
        }
        if self.max_iters == 0 {
            return Err(Error::InvalidConfig("max_iters must be at least 1".into()));
        }
        Ok(())
    }

    /// The concrete strategy a run will use: resolves [`KernelKind::Auto`]
    /// to the fused kernel; never returns `Auto`. (The legacy
    /// `pruned_assign` flag is ignored — its kernel no longer exists, and
    /// every kernel is exact anyway.)
    pub fn resolved_kernel(&self) -> KernelKind {
        match self.kernel {
            KernelKind::Auto => KernelKind::Fused,
            k => k,
        }
    }
}

/// How initial centroids are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// k distinct points drawn uniformly at random (the paper's choice for
    /// the serial and partial steps).
    RandomPoints,
    /// The k points with the largest weights (the paper's choice for the
    /// merge step: "the weight wᵢ of zᵢ is one of the k largest weights").
    HeaviestPoints,
    /// k-means++ (D² sampling). Not used by the paper; provided as an
    /// ablation axis for `ablation_seeding`.
    PlusPlus,
}

/// Full k-means configuration: k, restarts, seeding and the Lloyd knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Number of independent restarts (`R` in the paper); the run with the
    /// minimum MSE wins. The paper uses `R = 10`.
    pub restarts: usize,
    /// Seeding strategy.
    pub seed_mode: SeedMode,
    /// Per-run Lloyd parameters.
    pub lloyd: LloydConfig,
    /// Base RNG seed. Restart `r` derives its own stream from this, so a
    /// given `(seed, r)` pair is reproducible regardless of scheduling.
    pub seed: u64,
}

impl KMeansConfig {
    /// The paper's experimental configuration: `k = 40`, `R = 10`,
    /// `ε = 1e-9`, random-point seeding.
    pub fn paper(k: usize, seed: u64) -> Self {
        Self {
            k,
            restarts: 10,
            seed_mode: SeedMode::RandomPoints,
            lloyd: LloydConfig::default(),
            seed,
        }
    }

    /// Validates field ranges (k and restarts nonzero, Lloyd fields sane).
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::ZeroK);
        }
        if self.restarts == 0 {
            return Err(Error::InvalidConfig("restarts must be at least 1".into()));
        }
        self.lloyd.validate()
    }
}

/// How a grid cell's points are split into memory-sized chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionSpec {
    /// A fixed number of near-equal chunks (the paper's 5-split / 10-split).
    Count(usize),
    /// As many chunks as needed so that each chunk's point payload fits the
    /// given byte budget — the paper's "partitions that fit into available
    /// volatile memory".
    MemoryBudget {
        /// Volatile-memory budget for one chunk's point payload, in bytes.
        bytes: usize,
    },
    /// A fixed maximum number of points per chunk.
    MaxPoints(usize),
}

impl PartitionSpec {
    /// Resolves the spec into a chunk count for `n` points of `dim` f64s.
    ///
    /// Always returns at least 1; errors if the budget cannot hold a single
    /// point (which would force an infinite number of partitions).
    pub fn resolve(&self, n: usize, dim: usize) -> Result<usize> {
        match *self {
            PartitionSpec::Count(0) => {
                Err(Error::InvalidPartitioning("partition count must be >= 1".into()))
            }
            PartitionSpec::Count(p) => Ok(p),
            PartitionSpec::MemoryBudget { bytes } => {
                let per_point = dim * std::mem::size_of::<f64>();
                let points_per_chunk = bytes / per_point;
                if points_per_chunk == 0 {
                    return Err(Error::InvalidPartitioning(format!(
                        "budget of {bytes} bytes cannot hold one {dim}-dimensional point"
                    )));
                }
                Ok(n.div_ceil(points_per_chunk).max(1))
            }
            PartitionSpec::MaxPoints(0) => {
                Err(Error::InvalidPartitioning("max points per chunk must be >= 1".into()))
            }
            PartitionSpec::MaxPoints(m) => Ok(n.div_ceil(m).max(1)),
        }
    }
}

/// How the merge step consumes the per-chunk centroid sets (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeMode {
    /// Option (b): gather every chunk's weighted centroids and run one
    /// weighted k-means over all of them. The paper argues this is the more
    /// faithful option (no chunk is treated preferentially) and uses it.
    Collective,
    /// Option (a): fold chunks in arrival order, re-clustering the running
    /// centroid set with each new chunk's centroids. Kept as an ablation.
    Incremental,
}

/// Configuration of the full partial/merge pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialMergeConfig {
    /// k-means parameters shared by the partial runs (the paper fixes one k
    /// for all partitions of a cell).
    pub kmeans: KMeansConfig,
    /// Chunking policy.
    pub partitions: PartitionSpec,
    /// Merge strategy.
    pub merge_mode: MergeMode,
    /// Restarts for the merge k-means. The paper seeds the merge
    /// deterministically with the heaviest centroids, so one run suffices;
    /// more restarts fall back to random seeding for runs beyond the first.
    pub merge_restarts: usize,
    /// How the cell is sliced into chunks (§6 future work; the paper's
    /// experiments use the random-overlap deal).
    pub slicing: crate::slicing::SliceStrategy,
}

impl PartialMergeConfig {
    /// Paper defaults: `k = 40`, `R = 10`, collective merge, shuffled deal.
    pub fn paper(k: usize, partitions: usize, seed: u64) -> Self {
        Self {
            kmeans: KMeansConfig::paper(k, seed),
            partitions: PartitionSpec::Count(partitions),
            merge_mode: MergeMode::Collective,
            merge_restarts: 1,
            slicing: crate::slicing::SliceStrategy::RandomOverlap,
        }
    }

    /// Validates all nested configuration.
    pub fn validate(&self) -> Result<()> {
        self.kmeans.validate()?;
        if self.merge_restarts == 0 {
            return Err(Error::InvalidConfig("merge_restarts must be at least 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_paper_constants() {
        let c = KMeansConfig::paper(40, 7);
        assert_eq!(c.k, 40);
        assert_eq!(c.restarts, 10);
        assert_eq!(c.lloyd.epsilon, 1e-9);
        assert_eq!(c.seed_mode, SeedMode::RandomPoints);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = KMeansConfig::paper(40, 0);
        c.k = 0;
        assert_eq!(c.validate(), Err(Error::ZeroK));
        let mut c = KMeansConfig::paper(40, 0);
        c.restarts = 0;
        assert!(c.validate().is_err());
        let mut c = KMeansConfig::paper(40, 0);
        c.lloyd.max_iters = 0;
        assert!(c.validate().is_err());
        let mut c = KMeansConfig::paper(40, 0);
        c.lloyd.epsilon = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn partition_count_resolves_verbatim() {
        assert_eq!(PartitionSpec::Count(5).resolve(75_000, 6).unwrap(), 5);
        assert!(PartitionSpec::Count(0).resolve(10, 6).is_err());
    }

    #[test]
    fn memory_budget_resolves_to_ceiling() {
        // 6-dim points are 48 bytes; 480-byte budget = 10 points per chunk.
        let spec = PartitionSpec::MemoryBudget { bytes: 480 };
        assert_eq!(spec.resolve(100, 6).unwrap(), 10);
        assert_eq!(spec.resolve(101, 6).unwrap(), 11);
        assert_eq!(spec.resolve(0, 6).unwrap(), 1);
    }

    #[test]
    fn memory_budget_too_small_is_error() {
        let spec = PartitionSpec::MemoryBudget { bytes: 47 };
        assert!(spec.resolve(10, 6).is_err());
    }

    #[test]
    fn max_points_resolves_to_ceiling() {
        assert_eq!(PartitionSpec::MaxPoints(2500).resolve(12_500, 6).unwrap(), 5);
        assert_eq!(PartitionSpec::MaxPoints(2500).resolve(12_501, 6).unwrap(), 6);
        assert!(PartitionSpec::MaxPoints(0).resolve(10, 6).is_err());
    }

    #[test]
    fn partial_merge_paper_defaults() {
        let c = PartialMergeConfig::paper(40, 10, 1);
        assert_eq!(c.partitions, PartitionSpec::Count(10));
        assert_eq!(c.merge_mode, MergeMode::Collective);
        assert_eq!(c.slicing, crate::slicing::SliceStrategy::RandomOverlap);
        c.validate().unwrap();
    }

    #[test]
    fn configs_are_serde() {
        // Compile-time check that all config types derive Serialize +
        // Deserialize (the bench crate persists them with serde_json).
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<LloydConfig>();
        assert_serde::<KMeansConfig>();
        assert_serde::<PartialMergeConfig>();
        assert_serde::<PartitionSpec>();
        assert_serde::<MergeMode>();
        assert_serde::<SeedMode>();
    }
}
