//! # pmkm-core — partial/merge k-means
//!
//! A faithful, production-quality implementation of the **partial/merge
//! k-means** algorithm from *"Scaling Clustering Algorithms for Massive Data
//! Sets using Data Streams"* (S. Nittel, K. T. Leung, A. Braverman,
//! ICDE 2004).
//!
//! The algorithm clusters a massive point set that does not fit in memory by
//!
//! 1. dealing the points into `p` partitions sized to the available memory,
//! 2. running best-of-R k-means on each partition independently
//!    ([`partial::partial_kmeans`]), emitting one **weighted centroid** per
//!    cluster (weight = points assigned to it), and
//! 3. running a **weighted** k-means over all partitions' centroids, seeded
//!    with the heaviest ones ([`merge::merge_collective`]).
//!
//! ## Quick start
//!
//! ```
//! use pmkm_core::prelude::*;
//!
//! // A toy cell: two clusters in 2-D.
//! let mut cell = Dataset::new(2)?;
//! for i in 0..100 {
//!     let o = (i % 10) as f64 * 0.03;
//!     cell.push(&[o, o])?;
//!     cell.push(&[10.0 + o, 10.0 - o])?;
//! }
//!
//! // Paper defaults: best-of-10 restarts, eps = 1e-9, collective merge.
//! let cfg = PartialMergeConfig::paper(/*k=*/ 2, /*partitions=*/ 5, /*seed=*/ 42);
//! let result = partial_merge(&cell, &cfg)?;
//!
//! assert_eq!(result.merge.centroids.k(), 2);
//! let mse = metrics::mse_against(&cell, &result.merge.centroids)?;
//! assert!(mse < 1.0);
//! # Ok::<(), pmkm_core::Error>(())
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`point`] | §2 | distance primitives |
//! | [`mod@kernel`] | §4 ("improved search") | fused SoA assignment kernels |
//! | [`dataset`] | — | flat point containers, [`dataset::PointSource`] |
//! | [`seeding`] | §2/§3.3 | random / heaviest / k-means++ seeding, seed derivation |
//! | [`mod@lloyd`] | §2 | the shared (weighted) Lloyd iteration |
//! | [`mod@kmeans`] | §3.2 | best-of-R outer loop |
//! | [`mod@partial`] | §3.2 | chunk clustering → weighted centroids |
//! | [`mod@merge`] | §3.3 | collective & incremental merge |
//! | [`mod@pipeline`] | §3.4/Fig. 5 | end-to-end partial/merge (serial & worker pool) |
//! | [`metrics`] | §2/§3.3 | `E`, `E_pm`, MSE evaluation |
//! | [`mod@ecvq`] | §3.3 remarks | entropy-constrained VQ (adaptive k) |
//! | [`mod@coreset`] | beyond the paper | weighted coresets, merge-reduce tree, anytime queries |
//!
//! The stream-operator execution (queues, backpressure, operator cloning —
//! §3/§4 of the paper) lives in the companion crate `pmkm-stream`, which
//! drives these same primitives.

#![warn(missing_docs)]
// Denied rather than forbidden: the one sanctioned exception is the
// runtime-dispatched SIMD screen in [`mod@kernel`], which carries its own
// `#[allow(unsafe_code)]` and safety proofs (in-bounds by construction,
// CPU features checked before dispatch).
#![deny(unsafe_code)]

pub mod config;
pub mod coreset;
pub mod dataset;
pub mod ecvq;
pub mod error;
pub mod kernel;
pub mod kmeans;
pub mod lloyd;
pub mod merge;
pub mod metrics;
pub mod partial;
pub mod pipeline;
pub mod point;
pub mod seeding;
pub mod slicing;

pub use config::{
    KMeansConfig, KernelKind, LloydConfig, MergeMode, PartialMergeConfig, PartitionSpec, SeedMode,
    DEFAULT_MAX_ITERS, PAPER_EPSILON,
};
pub use coreset::{
    chunk_coreset, CompactionInfo, CoresetBucket, CoresetConfig, CoresetStats, CoresetTree,
    EvictionInfo, InsertOutcome,
};
pub use dataset::{Centroids, Dataset, PointSource, WeightedSet};
pub use error::{Error, Result};
pub use kernel::{FusedLayout, KernelStats};
pub use kmeans::{kmeans, kmeans_observed, KMeansOutcome, RestartStats};
pub use lloyd::{lloyd, lloyd_observed, LloydRun};
pub use merge::{
    merge, merge_collective, merge_collective_observed, merge_degraded_observed, merge_incremental,
    merge_incremental_observed, merge_observed, DegradedMergeOutput, MergeOutput,
};
pub use partial::{
    partial_ecvq, partial_kmeans, partial_kmeans_observed, partition_random, PartialOutput,
};
pub use pipeline::{
    partial_merge, partial_merge_ecvq, partial_merge_observed, partial_merge_with_workers,
    ChunkStats, PartialMergeResult,
};
pub use slicing::{slice, SliceStrategy};

/// Convenience prelude: `use pmkm_core::prelude::*;`.
pub mod prelude {
    pub use crate::config::{
        KMeansConfig, KernelKind, LloydConfig, MergeMode, PartialMergeConfig, PartitionSpec,
        SeedMode,
    };
    pub use crate::dataset::{Centroids, Dataset, PointSource, WeightedSet};
    pub use crate::error::{Error, Result};
    pub use crate::kmeans::kmeans;
    pub use crate::merge::{merge_collective, merge_incremental};
    pub use crate::metrics;
    pub use crate::partial::partial_kmeans;
    pub use crate::pipeline::{partial_merge, partial_merge_with_workers};
}
