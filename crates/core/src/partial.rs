//! The partial k-means step (§3.2).
//!
//! A grid cell's points are divided into `p` partitions sized to fit
//! volatile memory. Each partition is clustered independently with best-of-R
//! k-means and reduced to `k` **weighted centroids**, the weight being the
//! number of points assigned to the centroid at convergence — so the weights
//! of a chunk's centroids sum to the chunk's point count `N_j`.

use crate::config::KMeansConfig;
use crate::dataset::{Dataset, PointSource, WeightedSet};
use crate::ecvq::{ecvq, EcvqConfig};
use crate::error::{Error, Result};
use crate::kmeans::{kmeans_observed, RestartStats};
use crate::seeding::{derive_seed, rng_for};
use pmkm_obs::Recorder;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Stream tag for the shuffle RNG (kept away from restart/chunk streams).
const SHUFFLE_STREAM: u64 = 0x5348_5546_464C_4531; // "SHUFFLE1"

/// Result of clustering one partition.
///
/// Serializable so long cells can checkpoint individual partials between
/// merge levels (the stream orchestrator persists the merged form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialOutput {
    /// The chunk's weighted centroids `{(c_1j, w_1j), …}`. Clusters that
    /// attracted no points at convergence are dropped, so this may hold
    /// fewer than `k` entries; the weights always sum to `points`.
    pub centroids: WeightedSet,
    /// Number of points in the partition (`N_j`).
    pub points: usize,
    /// Minimum MSE over the restarts (the representation that was kept).
    pub best_mse: f64,
    /// Per-restart stats of the best-of-R search.
    pub restarts: Vec<RestartStats>,
    /// Lloyd iterations summed over restarts.
    pub total_iterations: usize,
    /// Wall time of this partition's clustering.
    pub elapsed: Duration,
    /// Per-iteration MSE of the winning restart (starting with `MSE(0)`).
    /// Empty for the tiny-chunk passthrough and for ECVQ partitions.
    pub best_trajectory: Vec<f64>,
}

/// Runs best-of-R k-means on one partition and emits weighted centroids.
///
/// # Examples
/// ```
/// use pmkm_core::{partial_kmeans, Dataset, KMeansConfig, PointSource};
/// let chunk = Dataset::from_rows(&[[0.0], [0.2], [5.0], [5.2], [5.4]])?;
/// let out = partial_kmeans(&chunk, &KMeansConfig::paper(2, 7))?;
/// // Weights count the points behind each centroid and sum to the chunk.
/// assert_eq!(out.centroids.total_weight(), 5.0);
/// # Ok::<(), pmkm_core::Error>(())
/// ```
///
/// If the chunk holds fewer than `k` points, every point becomes its own
/// weight-1 centroid — the exact representation with zero error, which is
/// what a k-means with `k ≥ n` would converge to anyway.
pub fn partial_kmeans(chunk: &Dataset, cfg: &KMeansConfig) -> Result<PartialOutput> {
    partial_kmeans_observed(chunk, cfg, None)
}

/// [`partial_kmeans`] with observability hooks: when `rec` is `Some`, the
/// chunk emits a `partial.chunk` event (points in, weighted centroids out,
/// best MSE) and bumps the `partial_*` counters, on top of the restart- and
/// iteration-level events from the inner best-of-R search.
pub fn partial_kmeans_observed(
    chunk: &Dataset,
    cfg: &KMeansConfig,
    rec: Option<&Recorder>,
) -> Result<PartialOutput> {
    cfg.validate()?;
    if chunk.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let started = Instant::now();
    if chunk.len() <= cfg.k {
        let mut ws = WeightedSet::new(chunk.dim())?;
        for p in chunk.iter() {
            ws.push(p, 1.0)?;
        }
        record_chunk(rec, chunk.len(), ws.len(), 0.0);
        return Ok(PartialOutput {
            centroids: ws,
            points: chunk.len(),
            best_mse: 0.0,
            restarts: Vec::new(),
            total_iterations: 0,
            elapsed: started.elapsed(),
            best_trajectory: Vec::new(),
        });
    }
    let mut out = kmeans_observed(chunk, cfg, rec)?;
    let mut ws = WeightedSet::new(chunk.dim())?;
    for (j, c) in out.best.centroids.iter().enumerate() {
        let w = out.best.cluster_weights[j];
        if w > 0.0 {
            ws.push(c, w)?;
        }
    }
    record_chunk(rec, chunk.len(), ws.len(), out.best.mse);
    Ok(PartialOutput {
        centroids: ws,
        points: chunk.len(),
        best_mse: out.best.mse,
        total_iterations: out.total_iterations(),
        restarts: out.restarts,
        elapsed: started.elapsed(),
        best_trajectory: std::mem::take(&mut out.best.mse_trajectory),
    })
}

fn record_chunk(rec: Option<&Recorder>, points: usize, centroids: usize, best_mse: f64) {
    if let Some(rec) = rec {
        let reg = rec.registry();
        reg.counter("partial_chunks_total").inc();
        reg.counter("partial_points_total").add(points as u64);
        reg.counter("partial_weighted_centroids_total").add(centroids as u64);
        rec.event(
            "partial.chunk",
            &[
                ("points", points.into()),
                ("weighted_centroids", centroids.into()),
                ("best_mse", best_mse.into()),
            ],
        );
    }
}

/// Runs entropy-constrained VQ on one partition instead of fixed-k
/// k-means — the §3.3 remark that ECVQ "allows to find an optimal k for a
/// partition on the fly": small partitions are represented with fewer
/// centroids (starved codewords are discarded), large ones with up to
/// `max_k`, and the merge step consumes the weighted codebook exactly like
/// a fixed-k partial output.
pub fn partial_ecvq(chunk: &Dataset, cfg: &EcvqConfig) -> Result<PartialOutput> {
    if chunk.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let started = Instant::now();
    let res = ecvq(chunk, cfg)?;
    Ok(PartialOutput {
        centroids: res.to_weighted_set()?,
        points: chunk.len(),
        best_mse: res.distortion / chunk.len() as f64,
        restarts: Vec::new(),
        total_iterations: res.iterations,
        elapsed: started.elapsed(),
        best_trajectory: Vec::new(),
    })
}

/// Deals a cell's points into `p` near-equal chunks, optionally after a
/// Fisher–Yates shuffle (the paper distributes points over chunks randomly;
/// its swath input already arrives "in random order").
pub fn partition_random(ds: &Dataset, p: usize, seed: u64, shuffle: bool) -> Result<Vec<Dataset>> {
    if p == 0 {
        return Err(Error::InvalidPartitioning("zero partitions".into()));
    }
    if !shuffle {
        return ds.split_round_robin(p);
    }
    let n = ds.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rng_for(derive_seed(seed, SHUFFLE_STREAM), 0);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let dim = ds.dim();
    let mut shuffled = Dataset::with_capacity(dim, n)?;
    for &i in &order {
        shuffled.push(ds.coords(i))?;
    }
    shuffled.split_round_robin(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KMeansConfig;

    fn blob_cell(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n_per {
            let o = (i % 7) as f64 * 0.01;
            ds.push(&[o, o]).unwrap();
            ds.push(&[50.0 + o, 50.0 - o]).unwrap();
        }
        ds
    }

    #[test]
    fn weights_sum_to_chunk_size() {
        let chunk = blob_cell(100); // 200 points
        let out = partial_kmeans(&chunk, &KMeansConfig::paper(5, 3)).unwrap();
        assert_eq!(out.points, 200);
        let total: f64 = out.centroids.weights().iter().sum();
        assert_eq!(total, 200.0);
    }

    #[test]
    fn emits_at_most_k_centroids_all_positive_weight() {
        let chunk = blob_cell(50);
        let out = partial_kmeans(&chunk, &KMeansConfig::paper(8, 1)).unwrap();
        assert!(out.centroids.len() <= 8);
        assert!(out.centroids.weights().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn tiny_chunk_passes_points_through() {
        let mut chunk = Dataset::new(2).unwrap();
        chunk.push(&[1.0, 2.0]).unwrap();
        chunk.push(&[3.0, 4.0]).unwrap();
        let out = partial_kmeans(&chunk, &KMeansConfig::paper(40, 0)).unwrap();
        assert_eq!(out.centroids.len(), 2);
        assert_eq!(out.best_mse, 0.0);
        assert_eq!(out.centroids.weights(), &[1.0, 1.0]);
        assert_eq!(out.centroids.coords(0), &[1.0, 2.0]);
    }

    #[test]
    fn empty_chunk_is_error() {
        let chunk = Dataset::new(2).unwrap();
        assert_eq!(partial_kmeans(&chunk, &KMeansConfig::paper(4, 0)), Err(Error::EmptyDataset));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let chunk = blob_cell(80);
        let cfg = KMeansConfig::paper(6, 42);
        let a = partial_kmeans(&chunk, &cfg).unwrap();
        let b = partial_kmeans(&chunk, &cfg).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.best_mse, b.best_mse);
    }

    #[test]
    fn partition_random_preserves_multiset() {
        let ds = blob_cell(33); // 66 points
        let parts = partition_random(&ds, 5, 7, true).unwrap();
        assert_eq!(parts.len(), 5);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 66);
        // Multiset equality: sort all points from both sides.
        let mut orig: Vec<Vec<f64>> = ds.iter().map(|p| p.to_vec()).collect();
        let mut got: Vec<Vec<f64>> =
            parts.iter().flat_map(|c| c.iter().map(|p| p.to_vec()).collect::<Vec<_>>()).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(orig, got);
    }

    #[test]
    fn partition_random_shuffle_changes_layout() {
        let ds = blob_cell(50);
        let unshuffled = partition_random(&ds, 4, 1, false).unwrap();
        let shuffled = partition_random(&ds, 4, 1, true).unwrap();
        assert_ne!(unshuffled[0].as_flat(), shuffled[0].as_flat());
    }

    #[test]
    fn partition_random_is_seed_deterministic() {
        let ds = blob_cell(50);
        let a = partition_random(&ds, 4, 9, true).unwrap();
        let b = partition_random(&ds, 4, 9, true).unwrap();
        let c = partition_random(&ds, 4, 10, true).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn partition_sizes_near_equal() {
        let ds = blob_cell(101); // 202 points
        let parts = partition_random(&ds, 10, 0, true).unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        assert!(max - min <= 1);
    }
}
