//! Elkan's triangle-inequality accelerated k-means (ICML 2003).
//!
//! The paper's prototype deliberately runs the naive nearest-centroid scan
//! ("we do not exploit many optimizations such as improved search mechanism
//! for finding the nearest centroid", §4) while noting such improvements
//! "can readily be applied" (§1). This module is that improvement: an
//! **exact** Lloyd variant that skips most distance computations using
//! per-point upper/lower bounds and inter-centroid distances. It produces
//! the same fixed point as [`crate::lloyd::lloyd`] from the same seeds (the
//! parity tests pin assignments and iteration counts), just faster when
//! k is large and clusters are separated.
//!
//! Differences from the reference description: we keep one lower bound per
//! point (to the second-closest centroid) instead of k bounds — the
//! "simplified Elkan" / Hamerly variant — which needs O(n) extra memory
//! instead of O(n·k) and is the better fit for chunked streaming use.

use crate::config::LloydConfig;
use crate::dataset::{Centroids, PointSource};
use crate::error::{Error, Result};
use crate::point::sq_dist;

/// Outcome of an accelerated run plus its work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ElkanRun {
    /// Final centroids.
    pub centroids: Centroids,
    /// Final assignment.
    pub assignments: Vec<u32>,
    /// Weight captured per cluster.
    pub cluster_weights: Vec<f64>,
    /// Weighted SSE at convergence.
    pub sse: f64,
    /// `sse / total weight`.
    pub mse: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the MSE delta criterion was met.
    pub converged: bool,
    /// Full distance evaluations performed (the naive algorithm does
    /// `n · k` per iteration; the saving is what this algorithm is for).
    pub distance_evals: u64,
    /// MSE after each distance calculation, starting with `MSE(0)` against
    /// the seeds — same shape and convergence sequence as
    /// [`crate::lloyd::LloydRun::mse_trajectory`].
    pub mse_trajectory: Vec<f64>,
    /// Empty clusters re-seeded across the run (donor *ranking* uses the
    /// maintained upper bounds, so reseed positions can differ from the
    /// naive Lloyd's; `0` means the runs are bit-comparable).
    pub reseeds: usize,
}

/// Runs Hamerly/Elkan-style accelerated Lloyd from the given seeds.
///
/// Exactness: every skipped evaluation is justified by the triangle
/// inequality, so the assignment after each iteration equals the naive
/// assignment; convergence uses the same `MSE(n−1) − MSE(n) ≤ ε` rule.
pub fn elkan<S: PointSource + ?Sized>(
    src: &S,
    init: &Centroids,
    cfg: &LloydConfig,
) -> Result<ElkanRun> {
    cfg.validate()?;
    if src.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if init.dim() != src.dim() {
        return Err(Error::DimensionMismatch { expected: src.dim(), actual: init.dim() });
    }
    let n = src.len();
    let k = init.k();
    if k > n {
        return Err(Error::KExceedsPoints { k, points: n });
    }
    let dim = src.dim();
    let total_weight = src.total_weight();
    let mut distance_evals = 0u64;

    let mut centroids: Vec<f64> = init.as_flat().to_vec();
    let mut assignments = vec![0u32; n];
    // Upper bound on distance to own centroid; lower bound on distance to
    // the second-closest centroid (both true distances, not squared).
    let mut upper = vec![0.0f64; n];
    let mut lower = vec![0.0f64; n];

    // Initial full assignment.
    for i in 0..n {
        let p = src.coords(i);
        let (mut best, mut best_d, mut second_d) = (0usize, f64::INFINITY, f64::INFINITY);
        for (j, c) in centroids.chunks_exact(dim).enumerate() {
            let d = sq_dist(p, c).sqrt();
            distance_evals += 1;
            if d < best_d {
                second_d = best_d;
                best_d = d;
                best = j;
            } else if d < second_d {
                second_d = d;
            }
        }
        assignments[i] = best as u32;
        upper[i] = best_d;
        lower[i] = second_d;
    }

    let mut prev_mse = exact_mse(src, &assignments, &centroids, dim, total_weight);
    let mut iterations = 0usize;
    let mut converged = false;
    let mut reseeds = 0usize;
    let mut mse_trajectory = Vec::with_capacity(cfg.max_iters.min(64) + 1);
    mse_trajectory.push(prev_mse);

    // Half the distance from each centroid to its nearest other centroid:
    // if upper[i] ≤ s[a(i)], the assignment cannot change (Elkan lemma 1).
    let mut s = vec![0.0f64; k];

    while iterations < cfg.max_iters {
        // --- Centroid recalculation ---------------------------------
        let mut sums = vec![0.0f64; k * dim];
        let mut weights = vec![0.0f64; k];
        for (i, &a) in assignments.iter().enumerate() {
            let j = a as usize;
            let w = src.weight(i);
            for (sm, c) in sums[j * dim..(j + 1) * dim].iter_mut().zip(src.coords(i)) {
                *sm += w * c;
            }
            weights[j] += w;
        }
        // Empty clusters: farthest-point reseed, matching `lloyd`'s policy.
        let mut moves = vec![0.0f64; k];
        {
            let empties: Vec<usize> = (0..k).filter(|&j| weights[j] == 0.0).collect();
            reseeds += empties.len();
            let mut donor_order: Vec<usize> = Vec::new();
            if !empties.is_empty() {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    upper[b].partial_cmp(&upper[a]).unwrap_or(std::cmp::Ordering::Equal)
                });
                donor_order = order;
            }
            let mut donor_iter = donor_order.into_iter();
            for j in 0..k {
                let new: Vec<f64> = if weights[j] > 0.0 {
                    sums[j * dim..(j + 1) * dim].iter().map(|v| v / weights[j]).collect()
                } else if let Some(donor) = donor_iter.next() {
                    src.coords(donor).to_vec()
                } else {
                    centroids[j * dim..(j + 1) * dim].to_vec()
                };
                moves[j] = sq_dist(&new, &centroids[j * dim..(j + 1) * dim]).sqrt();
                centroids[j * dim..(j + 1) * dim].copy_from_slice(&new);
            }
        }
        // Bound maintenance: own centroid moved ⇒ upper grows; the largest
        // move of any *other* centroid shrinks the lower bound.
        let max_move = moves.iter().copied().fold(0.0f64, f64::max);
        for i in 0..n {
            upper[i] += moves[assignments[i] as usize];
            lower[i] -= max_move;
        }
        // s[j] = ½ · min distance to another centroid.
        for j in 0..k {
            let mut min_d = f64::INFINITY;
            for j2 in 0..k {
                if j2 != j {
                    let d = sq_dist(
                        &centroids[j * dim..(j + 1) * dim],
                        &centroids[j2 * dim..(j2 + 1) * dim],
                    )
                    .sqrt();
                    distance_evals += 1;
                    if d < min_d {
                        min_d = d;
                    }
                }
            }
            s[j] = 0.5 * min_d;
        }

        // --- Assignment with pruning --------------------------------
        for i in 0..n {
            let a = assignments[i] as usize;
            let bound = lower[i].max(s[a]);
            if upper[i] <= bound {
                continue; // cannot have changed
            }
            // Tighten the upper bound first (one evaluation).
            let p = src.coords(i);
            let d_own = sq_dist(p, &centroids[a * dim..(a + 1) * dim]).sqrt();
            distance_evals += 1;
            upper[i] = d_own;
            if upper[i] <= bound {
                continue;
            }
            // Full re-scan.
            let (mut best, mut best_d, mut second_d) = (0usize, f64::INFINITY, f64::INFINITY);
            for (j, c) in centroids.chunks_exact(dim).enumerate() {
                let d = if j == a {
                    d_own
                } else {
                    distance_evals += 1;
                    sq_dist(p, c).sqrt()
                };
                if d < best_d {
                    second_d = best_d;
                    best_d = d;
                    best = j;
                } else if d < second_d {
                    second_d = d;
                }
            }
            assignments[i] = best as u32;
            upper[i] = best_d;
            lower[i] = second_d;
        }

        let mse = exact_mse(src, &assignments, &centroids, dim, total_weight);
        iterations += 1;
        let delta = prev_mse - mse;
        prev_mse = mse;
        mse_trajectory.push(mse);
        if delta >= 0.0 && delta <= cfg.epsilon {
            converged = true;
            break;
        }
    }

    // Final exact statistics (upper bounds may be loose for skipped points,
    // so recompute the true SSE and weights in one pass).
    let mut weights = vec![0.0f64; k];
    let mut sse = 0.0;
    for (i, &a) in assignments.iter().enumerate() {
        let j = a as usize;
        let w = src.weight(i);
        weights[j] += w;
        sse += w * sq_dist(src.coords(i), &centroids[j * dim..(j + 1) * dim]);
    }
    Ok(ElkanRun {
        centroids: Centroids::from_flat(dim, centroids)?,
        assignments,
        cluster_weights: weights,
        sse,
        mse: sse / total_weight,
        iterations,
        converged,
        distance_evals,
        mse_trajectory,
        reseeds,
    })
}

/// [`elkan`] with observability hooks: when `rec` is `Some`, the finished
/// run emits one `elkan.run` event comparing the distance evaluations
/// actually performed against what the naive `n · k` scan would have done,
/// and bumps the `elkan_*` counters accordingly.
pub fn elkan_observed<S: PointSource + ?Sized>(
    src: &S,
    init: &Centroids,
    cfg: &LloydConfig,
    rec: Option<&pmkm_obs::Recorder>,
) -> Result<ElkanRun> {
    let run = elkan(src, init, cfg)?;
    if let Some(rec) = rec {
        // Naive Lloyd evaluates n·k distances per distance-calculation step
        // (the initial assignment plus one per iteration).
        let naive_evals = (src.len() as u64) * (init.k() as u64) * (run.iterations as u64 + 1);
        let pruned = naive_evals.saturating_sub(run.distance_evals);
        let reg = rec.registry();
        reg.counter("elkan_distance_evals_total").add(run.distance_evals);
        reg.counter("elkan_pruned_evals_total").add(pruned);
        rec.event(
            "elkan.run",
            &[
                ("iterations", run.iterations.into()),
                ("mse", run.mse.into()),
                ("distance_evals", run.distance_evals.into()),
                ("naive_evals", naive_evals.into()),
                ("converged", run.converged.into()),
            ],
        );
    }
    Ok(run)
}

/// Exact weighted MSE of the current assignment against the current
/// centroids: one distance per point (O(n·dim)), so the convergence
/// sequence matches the naive Lloyd's bit for bit (same assignments, same
/// summation order) while the O(n·k·dim) search stays pruned.
fn exact_mse<S: PointSource + ?Sized>(
    src: &S,
    assignments: &[u32],
    centroids: &[f64],
    dim: usize,
    total_weight: f64,
) -> f64 {
    let mut sse = 0.0;
    for (i, &a) in assignments.iter().enumerate() {
        let j = a as usize;
        sse += src.weight(i) * sq_dist(src.coords(i), &centroids[j * dim..(j + 1) * dim]);
    }
    sse / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeedMode;
    use crate::dataset::{Dataset, WeightedSet};
    use crate::lloyd::lloyd;
    use crate::seeding::{rng_for, seed_centroids};

    fn random_cell(seed: u64, n: usize, dim: usize) -> Dataset {
        use rand::Rng;
        let mut rng = rng_for(seed, 0);
        let mut ds = Dataset::new(dim).unwrap();
        let mut buf = vec![0.0; dim];
        for _ in 0..n {
            let blob = rng.gen_range(0..4) as f64 * 25.0;
            for b in buf.iter_mut() {
                *b = blob + rng.gen_range(-2.0..2.0);
            }
            ds.push(&buf).unwrap();
        }
        ds
    }

    #[test]
    fn matches_naive_lloyd_exactly() {
        for seed in 0..6u64 {
            let ds = random_cell(seed, 400, 3);
            let init =
                seed_centroids(&ds, 6, SeedMode::RandomPoints, &mut rng_for(seed, 1)).unwrap();
            let cfg = LloydConfig::default();
            let naive = lloyd(&ds, &init, &cfg).unwrap();
            let fast = elkan(&ds, &init, &cfg).unwrap();
            assert_eq!(fast.assignments, naive.assignments, "seed={seed}");
            assert_eq!(fast.centroids, naive.centroids, "seed={seed}");
            assert_eq!(fast.iterations, naive.iterations, "seed={seed}");
            assert!((fast.mse - naive.mse).abs() < 1e-12);
            assert!(fast.converged);
        }
    }

    #[test]
    fn actually_prunes_distance_evaluations() {
        let ds = random_cell(3, 2_000, 4);
        let init = seed_centroids(&ds, 16, SeedMode::RandomPoints, &mut rng_for(3, 1)).unwrap();
        let cfg = LloydConfig::default();
        let naive_evals = {
            let run = lloyd(&ds, &init, &cfg).unwrap();
            // Naive cost: n·k per iteration plus the initial assignment.
            (2_000u64 * 16) * (run.iterations as u64 + 1)
        };
        let fast = elkan(&ds, &init, &cfg).unwrap();
        assert!(
            fast.distance_evals < naive_evals / 2,
            "pruned {} vs naive {}",
            fast.distance_evals,
            naive_evals
        );
    }

    #[test]
    fn weighted_inputs_match_too() {
        let mut ws = WeightedSet::new(2).unwrap();
        let mut rng = rng_for(9, 0);
        use rand::Rng;
        for _ in 0..200 {
            let blob = rng.gen_range(0..3) as f64 * 30.0;
            ws.push(
                &[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)],
                rng.gen_range(0.5..20.0),
            )
            .unwrap();
        }
        let init = seed_centroids(&ws, 5, SeedMode::HeaviestPoints, &mut rng_for(9, 1)).unwrap();
        let cfg = LloydConfig::default();
        let naive = lloyd(&ws, &init, &cfg).unwrap();
        let fast = elkan(&ws, &init, &cfg).unwrap();
        assert_eq!(fast.assignments, naive.assignments);
        assert_eq!(fast.iterations, naive.iterations);
        for (a, b) in fast.centroids.as_flat().iter().zip(naive.centroids.as_flat()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_cluster_reseed_keeps_k() {
        let ds = Dataset::from_rows(&[[0.0], [1.0], [2.0], [3.0]]).unwrap();
        let init = Centroids::from_flat(1, vec![0.0, 1e9, 2e9, 3e9]).unwrap();
        let run = elkan(&ds, &init, &LloydConfig::default()).unwrap();
        assert_eq!(run.centroids.k(), 4);
        assert_eq!(run.sse, 0.0);
        let total: f64 = run.cluster_weights.iter().sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn input_validation() {
        let empty = Dataset::new(2).unwrap();
        let init = Centroids::from_flat(2, vec![0.0, 0.0]).unwrap();
        assert!(matches!(elkan(&empty, &init, &LloydConfig::default()), Err(Error::EmptyDataset)));
        let ds = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        let init2 = Centroids::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        assert!(matches!(
            elkan(&ds, &init2, &LloydConfig::default()),
            Err(Error::KExceedsPoints { .. })
        ));
    }
}
