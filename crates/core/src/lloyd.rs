//! The Lloyd iteration shared by every k-means variant in this crate.
//!
//! One generic implementation over [`PointSource`] covers both of the
//! paper's algorithms:
//!
//! * **unweighted k-means** (§2: serial k-means, and the partial step run on
//!   each chunk) — sources report weight 1.0 per point,
//! * **weighted merge k-means** (§3.3) — sources are weighted centroid sets
//!   and the centroid recalculation computes the *weighted* mean
//!   `µ_j = (Σ w_i c_i) / (Σ w_i)`.
//!
//! Convergence follows the paper exactly: iterate until
//! `MSE(n−1) − MSE(n) ≤ ε` with `ε = 1e-9`, where MSE is the weighted mean
//! of squared point-to-assigned-centroid distances. A hard iteration cap
//! protects against pathological inputs; hitting it is reported via
//! [`LloydRun::converged`].

use crate::config::{KernelKind, LloydConfig};
use crate::dataset::{Centroids, PointSource};
use crate::error::{Error, Result};
use crate::kernel::{FusedLayout, KernelStats};
use crate::point::nearest_centroid;
use pmkm_obs::Recorder;
use rayon::prelude::*;

/// Outcome of one converged (or capped) Lloyd run.
#[derive(Debug, Clone, PartialEq)]
pub struct LloydRun {
    /// Final centroid table (`k × dim`).
    pub centroids: Centroids,
    /// Cluster index of every input point, consistent with `centroids`.
    pub assignments: Vec<u32>,
    /// Total input weight assigned to each cluster. For unweighted sources
    /// these are the cluster point-counts — exactly the weights the partial
    /// operator attaches to its emitted centroids.
    pub cluster_weights: Vec<f64>,
    /// The paper's error function: weighted sum of squared distances
    /// (`E` for unweighted sources, `E_pm` for weighted ones).
    pub sse: f64,
    /// `sse / total_weight` — the quantity whose per-iteration decrease
    /// drives convergence and that the paper reports as "MSE".
    pub mse: f64,
    /// Number of centroid-recalculation iterations performed (`I`).
    pub iterations: usize,
    /// False only if the iteration cap was hit before the MSE settled.
    pub converged: bool,
    /// MSE after each distance calculation, starting with `MSE(0)` against
    /// the seeds — `mse_trajectory.len() == iterations + 1`. Monotonically
    /// non-increasing for plain Lloyd steps (empty-cluster re-seeds are the
    /// only way a value can tick up).
    pub mse_trajectory: Vec<f64>,
    /// Empty clusters re-seeded across the whole run. `0` certifies that
    /// `mse_trajectory` is monotone non-increasing (up to FP round-off) —
    /// the property tests lean on this.
    pub reseeds: usize,
}

/// Assignment-phase scratch, reused across iterations to avoid
/// per-iteration allocation.
struct Scratch {
    assignments: Vec<u32>,
    /// Squared distance of each point to its assigned centroid.
    d2: Vec<f64>,
    /// Per-cluster weighted coordinate sums (`k × dim`).
    sums: Vec<f64>,
    /// Per-cluster total weight.
    weights: Vec<f64>,
    /// Screened-distance buffer for the fused kernel (`k` padded to whole
    /// SoA blocks), unused by the scalar paths.
    screen: Vec<f64>,
}

impl Scratch {
    fn new(n: usize, k: usize, dim: usize) -> Self {
        Self {
            assignments: vec![0; n],
            d2: vec![0.0; n],
            sums: vec![0.0; k * dim],
            weights: vec![0.0; k],
            screen: Vec::new(),
        }
    }
}

/// Runs Lloyd's algorithm from the given initial centroids.
///
/// # Errors
/// * [`Error::EmptyDataset`] for an empty source,
/// * [`Error::DimensionMismatch`] if `init` and `src` disagree on `dim`,
/// * [`Error::KExceedsPoints`] if `init.k() > src.len()` (more clusters than
///   points can never be non-empty).
pub fn lloyd<S: PointSource + ?Sized>(
    src: &S,
    init: &Centroids,
    cfg: &LloydConfig,
) -> Result<LloydRun> {
    lloyd_observed(src, init, cfg, None)
}

/// [`lloyd`] with observability hooks: when `rec` is `Some`, every
/// iteration emits a `lloyd.iteration` event (MSE, convergence delta,
/// reassignment count) and the fused kernel tallies its rescue rate into
/// the recorder's registry. `None` takes the exact same code path as
/// [`lloyd`].
pub fn lloyd_observed<S: PointSource + ?Sized>(
    src: &S,
    init: &Centroids,
    cfg: &LloydConfig,
    rec: Option<&Recorder>,
) -> Result<LloydRun> {
    cfg.validate()?;
    if src.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if init.dim() != src.dim() {
        return Err(Error::DimensionMismatch { expected: src.dim(), actual: init.dim() });
    }
    let n = src.len();
    let k = init.k();
    if k > n {
        return Err(Error::KExceedsPoints { k, points: n });
    }
    let dim = src.dim();
    let total_weight = src.total_weight();
    debug_assert!(total_weight > 0.0);

    let kernel = cfg.resolved_kernel();
    let mut centroids = init.clone();
    let mut scratch = Scratch::new(n, k, dim);
    // Fused-kernel tallies are two integer bumps per point — cheap enough
    // to keep unconditionally without forking the code path.
    let mut kernel_stats = KernelStats::default();
    // Previous iteration's assignments, kept only to count reassignments.
    let mut prev_assign: Vec<u32> = if rec.is_some() { vec![0; n] } else { Vec::new() };

    // Distance calculation against the initial seeds gives MSE(0).
    let mut prev_mse = {
        let _phase = rec.and_then(|r| r.phase("assign"));
        assign(src, &centroids, cfg, kernel, &mut scratch, &mut kernel_stats) / total_weight
    };
    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_mse = prev_mse;
    let mut reseeds = 0usize;
    let mut mse_trajectory = Vec::with_capacity(cfg.max_iters.min(64) + 1);
    mse_trajectory.push(prev_mse);

    while iterations < cfg.max_iters {
        if rec.is_some() {
            prev_assign.copy_from_slice(&scratch.assignments);
        }
        // Centroid recalculation: µ_j = Σ w_i v_i / Σ w_i, with empty
        // clusters re-seeded from the points farthest from their centroid.
        reseeds += {
            let _phase = rec.and_then(|r| r.phase("update"));
            recompute_means(src, &mut centroids, &mut scratch)
        };
        let mse = {
            let _phase = rec.and_then(|r| r.phase("assign"));
            assign(src, &centroids, cfg, kernel, &mut scratch, &mut kernel_stats) / total_weight
        };
        iterations += 1;
        let delta = prev_mse - mse;
        final_mse = mse;
        prev_mse = mse;
        mse_trajectory.push(mse);
        if let Some(rec) = rec {
            // Convergence bookkeeping (the reassignment diff is an O(n)
            // scan) gets its own phase so it shows up next to the real work.
            let _phase = rec.phase("converge");
            let reassigned =
                prev_assign.iter().zip(scratch.assignments.iter()).filter(|(a, b)| a != b).count()
                    as u64;
            rec.registry().counter("lloyd_iterations_total").inc();
            rec.registry().counter("lloyd_reassignments_total").add(reassigned);
            rec.event(
                "lloyd.iteration",
                &[
                    ("iter", iterations.into()),
                    ("mse", mse.into()),
                    ("delta", delta.into()),
                    ("reassigned", reassigned.into()),
                ],
            );
        }
        // Plain Lloyd decreases MSE monotonically; a negative delta can only
        // follow an empty-cluster re-seed, in which case we keep iterating.
        if delta >= 0.0 && delta <= cfg.epsilon {
            converged = true;
            break;
        }
    }

    if let Some(rec) = rec {
        if kernel_stats.points > 0 {
            rec.registry().counter("kernel_fused_points_total").add(kernel_stats.points);
            rec.registry().counter("kernel_fused_rescued_total").add(kernel_stats.rescued);
        }
        rec.event(
            "lloyd.kernel",
            &[
                ("kind", kernel.label().into()),
                ("points", kernel_stats.points.into()),
                ("rescued", kernel_stats.rescued.into()),
                ("rescues_per_point", kernel_stats.rescues_per_point().into()),
                ("reseeds", reseeds.into()),
            ],
        );
    }

    let sse = final_mse * total_weight;
    Ok(LloydRun {
        centroids,
        assignments: std::mem::take(&mut scratch.assignments),
        cluster_weights: std::mem::take(&mut scratch.weights),
        sse,
        mse: final_mse,
        iterations,
        converged,
        mse_trajectory,
        reseeds,
    })
}

/// Distance-calculation step: assigns every point to its nearest centroid,
/// filling `scratch` (assignments, per-point d², per-cluster sums/weights)
/// and returning the weighted SSE.
///
/// Every strategy produces bit-identical contents of `scratch` (the fused
/// kernel's rescue pass recomputes the winning distance with the scalar
/// `sq_dist`, and the accumulation visits points in the same order), so
/// iteration counts, trajectories, and final centroids never depend on the
/// kernel choice.
fn assign<S: PointSource + ?Sized>(
    src: &S,
    centroids: &Centroids,
    cfg: &LloydConfig,
    kernel: KernelKind,
    scratch: &mut Scratch,
    kernel_stats: &mut KernelStats,
) -> f64 {
    let dim = src.dim();
    let cents = centroids.as_flat();
    let n = src.len();

    if kernel == KernelKind::Fused && !(cfg.parallel_assign && n >= 2048) {
        // Fused path: one pass over the points does the SoA screen, the
        // exact rescue, and the weighted accumulator updates.
        let layout = FusedLayout::new(cents, dim);
        scratch.screen.resize(layout.scratch_len(), 0.0);
        scratch.sums.fill(0.0);
        scratch.weights.fill(0.0);
        let mut wsse = 0.0;
        for i in 0..n {
            let x = src.coords(i);
            let (j, d2) = layout.nearest_counted(x, &mut scratch.screen, kernel_stats);
            scratch.assignments[i] = j as u32;
            scratch.d2[i] = d2;
            let w = src.weight(i);
            let sum = &mut scratch.sums[j * dim..(j + 1) * dim];
            for (s, c) in sum.iter_mut().zip(x) {
                *s += w * c;
            }
            scratch.weights[j] += w;
            wsse += w * d2;
        }
        return wsse;
    }

    // The rayon path always uses the stateless scalar search (the fused
    // kernel wants a per-worker screen buffer); results are identical.
    if cfg.parallel_assign && n >= 2048 {
        // Hot O(n·k·dim) search in parallel; cheap O(n·dim) accumulation
        // stays serial to avoid a k×dim-sized reduction per worker.
        scratch.assignments.par_iter_mut().zip(scratch.d2.par_iter_mut()).enumerate().for_each(
            |(i, (a, d))| {
                let (j, d2) = nearest_centroid(src.coords(i), cents, dim);
                *a = j as u32;
                *d = d2;
            },
        );
    } else {
        for (i, (a, d)) in scratch.assignments.iter_mut().zip(scratch.d2.iter_mut()).enumerate() {
            let (j, d2) = nearest_centroid(src.coords(i), cents, dim);
            *a = j as u32;
            *d = d2;
        }
    }

    scratch.sums.fill(0.0);
    scratch.weights.fill(0.0);
    let mut wsse = 0.0;
    for i in 0..n {
        let j = scratch.assignments[i] as usize;
        let w = src.weight(i);
        let sum = &mut scratch.sums[j * dim..(j + 1) * dim];
        for (s, c) in sum.iter_mut().zip(src.coords(i)) {
            *s += w * c;
        }
        scratch.weights[j] += w;
        wsse += w * scratch.d2[i];
    }
    wsse
}

/// Centroid recalculation from the accumulated sums. Clusters that received
/// no weight are re-seeded to the input points currently farthest from their
/// assigned centroid (distinct donors for multiple empty clusters); the
/// paper does not specify an empty-cluster policy, see DESIGN.md §5.
/// Returns how many clusters were re-seeded.
fn recompute_means<S: PointSource + ?Sized>(
    src: &S,
    centroids: &mut Centroids,
    scratch: &mut Scratch,
) -> usize {
    let dim = centroids.dim();
    let k = centroids.k();
    let mut empties: Vec<usize> = Vec::new();
    {
        let flat = centroids.as_flat_mut();
        for j in 0..k {
            let w = scratch.weights[j];
            if w > 0.0 {
                let dst = &mut flat[j * dim..(j + 1) * dim];
                let sum = &scratch.sums[j * dim..(j + 1) * dim];
                for (d, s) in dst.iter_mut().zip(sum) {
                    *d = s / w;
                }
            } else {
                empties.push(j);
            }
        }
    }
    if empties.is_empty() {
        return 0;
    }
    // Rank donor points by their current squared distance, farthest first.
    let n = src.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scratch.d2[b].partial_cmp(&scratch.d2[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let flat = centroids.as_flat_mut();
    for (e, &j) in empties.iter().enumerate() {
        // With k ≤ n there are always enough donors.
        let donor = order[e.min(n - 1)];
        flat[j * dim..(j + 1) * dim].copy_from_slice(src.coords(donor));
    }
    empties.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeedMode;
    use crate::dataset::{Dataset, WeightedSet};
    use crate::seeding::{rng_for, seed_centroids};

    fn two_blob_dataset() -> Dataset {
        // Tight blobs around (0,0) and (100,100).
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..20 {
            let o = (i % 5) as f64 * 0.1;
            ds.push(&[o, -o]).unwrap();
            ds.push(&[100.0 + o, 100.0 - o]).unwrap();
        }
        ds
    }

    fn cfg() -> LloydConfig {
        LloydConfig::default()
    }

    #[test]
    fn converges_on_two_obvious_blobs() {
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![1.0, 1.0, 99.0, 99.0]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert!(run.converged);
        assert_eq!(run.cluster_weights, vec![20.0, 20.0]);
        // Means of the blobs: (0.2, -0.2) and (100.2, 99.8).
        let c0 = run.centroids.centroid(0);
        assert!((c0[0] - 0.2).abs() < 1e-12, "c0 = {c0:?}");
        assert!((c0[1] + 0.2).abs() < 1e-12);
        let c1 = run.centroids.centroid(1);
        assert!((c1[0] - 100.2).abs() < 1e-12);
    }

    #[test]
    fn assignments_consistent_with_final_centroids() {
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        for (i, &a) in run.assignments.iter().enumerate() {
            let (nearest, _) = nearest_centroid(ds.coords(i), run.centroids.as_flat(), 2);
            assert_eq!(a as usize, nearest, "point {i}");
        }
    }

    #[test]
    fn sse_matches_direct_recomputation() {
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 50.0, 50.0]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        let mut expect = 0.0;
        for (i, &a) in run.assignments.iter().enumerate() {
            expect += crate::point::sq_dist(ds.coords(i), run.centroids.centroid(a as usize));
        }
        assert!((run.sse - expect).abs() < 1e-9 * expect.max(1.0));
        assert!((run.mse - expect / ds.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn k_equals_one_returns_global_mean() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [2.0, 4.0], [4.0, 2.0]]).unwrap();
        let init = Centroids::from_flat(2, vec![100.0, 100.0]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert_eq!(run.centroids.centroid(0), &[2.0, 2.0]);
        assert!(run.converged);
    }

    #[test]
    fn k_equals_n_gives_zero_error() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [5.0, 5.0], [9.0, 1.0]]).unwrap();
        let init = ds.clone();
        let init = Centroids::from_flat(2, init.into_flat()).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert_eq!(run.sse, 0.0);
        assert_eq!(run.mse, 0.0);
        assert!(run.converged);
    }

    #[test]
    fn weighted_centroid_recalculation_uses_weighted_mean() {
        // One cluster; weighted mean of {(0, w=1), (10, w=3)} is 7.5.
        let mut ws = WeightedSet::new(1).unwrap();
        ws.push(&[0.0], 1.0).unwrap();
        ws.push(&[10.0], 3.0).unwrap();
        let init = Centroids::from_flat(1, vec![4.0]).unwrap();
        let run = lloyd(&ws, &init, &cfg()).unwrap();
        assert_eq!(run.centroids.centroid(0), &[7.5]);
        assert_eq!(run.cluster_weights, vec![4.0]);
        // E_pm = 1·7.5² + 3·2.5² = 75.0; MSE = 75 / 4.
        assert!((run.sse - 75.0).abs() < 1e-12);
        assert!((run.mse - 18.75).abs() < 1e-12);
    }

    #[test]
    fn weight_scaling_does_not_move_centroids() {
        // Scaling all weights by a constant must leave centroids unchanged.
        let mut a = WeightedSet::new(2).unwrap();
        let mut b = WeightedSet::new(2).unwrap();
        let pts = [[0.0, 1.0], [2.0, 3.0], [10.0, 10.0], [12.0, 9.0]];
        for (i, p) in pts.iter().enumerate() {
            a.push(p, 1.0 + i as f64).unwrap();
            b.push(p, 10.0 * (1.0 + i as f64)).unwrap();
        }
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 11.0, 10.0]).unwrap();
        let ra = lloyd(&a, &init, &cfg()).unwrap();
        let rb = lloyd(&b, &init, &cfg()).unwrap();
        assert_eq!(ra.centroids, rb.centroids);
        assert!((ra.mse - rb.mse).abs() < 1e-12);
        assert!((rb.sse - 10.0 * ra.sse).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_is_reseeded_not_lost() {
        // Three centroids but the third starts far from all mass: after the
        // first assignment it is empty and must be re-seeded, and the final
        // result must keep k = 3 with no NaNs.
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 100.0, 100.0, 1e6, 1e6]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert_eq!(run.centroids.k(), 3);
        assert!(run.centroids.as_flat().iter().all(|c| c.is_finite()));
        // Every point is still assigned and weights sum to n.
        let total: f64 = run.cluster_weights.iter().sum();
        assert_eq!(total, ds.len() as f64);
    }

    #[test]
    fn multiple_empty_clusters_get_distinct_donors() {
        // 4 identical-ish points near origin, 4 centroids far away except one.
        let ds = Dataset::from_rows(&[[0.0], [1.0], [2.0], [3.0]]).unwrap();
        let init = Centroids::from_flat(1, vec![0.0, 1e9, 2e9, 3e9]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert_eq!(run.centroids.k(), 4);
        // With k = n = 4, the optimum puts one centroid on each point.
        let mut finals: Vec<f64> = run.centroids.as_flat().to_vec();
        finals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(finals, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(run.sse, 0.0);
    }

    #[test]
    fn iteration_cap_reports_not_converged() {
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 0.1, 0.1]).unwrap();
        let tight = LloydConfig { max_iters: 1, ..LloydConfig::default() };
        let run = lloyd(&ds, &init, &tight).unwrap();
        assert_eq!(run.iterations, 1);
        assert!(!run.converged);
    }

    #[test]
    fn parallel_and_serial_assignment_agree() {
        let mut ds = Dataset::new(3).unwrap();
        let mut rng = rng_for(11, 0);
        use rand::Rng;
        for _ in 0..5000 {
            ds.push(&[rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0, rng.gen::<f64>()]).unwrap();
        }
        let init = seed_centroids(&ds, 8, SeedMode::RandomPoints, &mut rng_for(3, 0)).unwrap();
        let serial = lloyd(&ds, &init, &LloydConfig::default()).unwrap();
        let par =
            lloyd(&ds, &init, &LloydConfig { parallel_assign: true, ..LloydConfig::default() })
                .unwrap();
        assert_eq!(serial.centroids, par.centroids);
        assert_eq!(serial.assignments, par.assignments);
        assert_eq!(serial.iterations, par.iterations);
        assert!((serial.mse - par.mse).abs() < 1e-15);
    }

    /// The legacy `pruned_assign` flag (whose kernel was removed) is a
    /// pure no-op: configs that persist it still load and still produce
    /// bit-identical results through the fused kernel.
    #[test]
    fn legacy_pruned_assign_flag_is_a_bit_identical_noop() {
        let mut ds = Dataset::new(3).unwrap();
        let mut rng = rng_for(17, 0);
        use rand::Rng;
        for _ in 0..3000 {
            ds.push(&[rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0, rng.gen::<f64>()]).unwrap();
        }
        let init = seed_centroids(&ds, 12, SeedMode::RandomPoints, &mut rng_for(5, 0)).unwrap();
        let legacy = LloydConfig { pruned_assign: true, ..LloydConfig::default() };
        assert_eq!(legacy.resolved_kernel(), KernelKind::Fused);
        let plain = lloyd(&ds, &init, &LloydConfig::default()).unwrap();
        let flagged = lloyd(&ds, &init, &legacy).unwrap();
        assert_eq!(plain.centroids, flagged.centroids);
        assert_eq!(plain.assignments, flagged.assignments);
        assert_eq!(plain.iterations, flagged.iterations);
        assert_eq!(plain.mse, flagged.mse);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let empty = Dataset::new(2).unwrap();
        let init = Centroids::from_flat(2, vec![0.0, 0.0]).unwrap();
        assert_eq!(lloyd(&empty, &init, &cfg()), Err(Error::EmptyDataset));

        let ds = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        let init3 = Centroids::from_flat(3, vec![0.0; 3]).unwrap();
        assert_eq!(
            lloyd(&ds, &init3, &cfg()),
            Err(Error::DimensionMismatch { expected: 2, actual: 3 })
        );

        let init2 = Centroids::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        assert_eq!(lloyd(&ds, &init2, &cfg()), Err(Error::KExceedsPoints { k: 2, points: 1 }));
    }

    #[test]
    fn mse_trajectory_tracks_every_iteration() {
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert_eq!(run.mse_trajectory.len(), run.iterations + 1);
        assert_eq!(*run.mse_trajectory.last().unwrap(), run.mse);
        for w in run.mse_trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "trajectory rose: {:?}", run.mse_trajectory);
        }
    }

    #[test]
    fn observed_run_is_bit_identical_and_emits_events() {
        use pmkm_obs::RingBufferSink;
        use std::sync::Arc;
        let ds = two_blob_dataset();
        let init = Centroids::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let plain = lloyd(&ds, &init, &cfg()).unwrap();

        let ring = Arc::new(RingBufferSink::new(256));
        let rec = pmkm_obs::Recorder::new().with_sink(ring.clone());
        let observed = lloyd_observed(&ds, &init, &cfg(), Some(&rec)).unwrap();

        assert_eq!(plain.centroids, observed.centroids);
        assert_eq!(plain.mse, observed.mse);
        assert_eq!(plain.mse_trajectory, observed.mse_trajectory);

        let events = ring.events();
        let iters = events.iter().filter(|e| e.name == "lloyd.iteration").count();
        assert_eq!(iters, observed.iterations);
        assert_eq!(events.iter().filter(|e| e.name == "lloyd.kernel").count(), 1);
        let snap = rec.registry().snapshot();
        let fused_points = snap
            .counters
            .iter()
            .find(|c| c.name == "kernel_fused_points_total")
            .map(|c| c.value)
            .unwrap();
        // One fused screen per point per distance calculation.
        assert_eq!(fused_points, (ds.len() * (observed.iterations + 1)) as u64);
    }

    #[test]
    fn zero_iterations_never_happens() {
        // Even a perfectly seeded run performs one recalculation iteration
        // to observe the zero delta.
        let ds = Dataset::from_rows(&[[0.0], [10.0]]).unwrap();
        let init = Centroids::from_flat(1, vec![0.0, 10.0]).unwrap();
        let run = lloyd(&ds, &init, &cfg()).unwrap();
        assert_eq!(run.iterations, 1);
        assert!(run.converged);
    }
}
