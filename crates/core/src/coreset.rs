//! Weighted coresets and the merge-reduce tree behind unbounded streams.
//!
//! The paper's partial/merge pipeline keeps one weighted-centroid set per
//! chunk, so live memory grows linearly with stream length. This module
//! replaces that with the classic streaming compaction scheme:
//!
//! * [`chunk_coreset`] builds a bounded weighted summary of a chunk by
//!   importance sampling (the "lightweight coreset" distribution: half
//!   uniform-by-mass, half proportional to squared distance from the
//!   weighted mean), then re-weights each sampled representative with the
//!   total mass of the input points nearest to it. Because every input
//!   weight lands in exactly one representative, integer input masses are
//!   conserved *exactly* at every level.
//! * [`CoresetTree`] keeps the per-chunk coresets in a binary-counter
//!   merge-reduce tree: each arriving chunk is a level-0 bucket, and
//!   whenever two buckets share a level they are compacted into one bucket
//!   one level up. Live buckets therefore number at most
//!   `floor(log2(chunks)) + 1` regardless of stream length, so memory is
//!   bounded by `levels × coreset_size`.
//! * [`CoresetTree::query_now`] answers an *anytime* clustering query:
//!   union the live buckets (oldest first — a deterministic order) and run
//!   weighted Lloyd over the union via the collective merge. The terminal
//!   merge of a finite stream is the same call over the final tree, so an
//!   anytime query issued after the last chunk is bit-identical to it.
//!
//! Two aging variants cover evolving streams: a sliding window (buckets
//!   whose newest chunk falls out of the window are evicted whole, their
//!   audit mass moved to `expired_points`) and exponential decay (all live
//!   weights are scaled by λ per arriving chunk; audit masses stay
//!   undecayed so mass accounting remains in raw points).
//!
//! Determinism: every compaction derives its RNG from
//! `(seed, cell, level, first_chunk)`, none of which depend on scheduling,
//! so a tree fed the same chunks in chunk-id order produces bit-identical
//! buckets regardless of how many workers raced to produce those chunks.

use crate::config::KMeansConfig;
use crate::dataset::{PointSource, WeightedSet};
use crate::error::{Error, Result};
use crate::merge::{merge_collective_observed, MergeOutput};
use crate::point::sq_dist;
use crate::seeding::{derive_seed, rng_for};
use pmkm_obs::Recorder;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// RNG stream tag for compaction seeds (ASCII `CSETTREE`).
const CORESET_STREAM: u64 = 0x4353_4554_5452_4545;

/// Configuration of a coreset tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoresetConfig {
    /// Maximum number of weighted representatives per bucket.
    pub size: usize,
    /// Sliding window in chunks: buckets whose newest chunk is older than
    /// `current_chunk - window` are evicted whole. `None` keeps everything.
    pub window: Option<usize>,
    /// Exponential decay factor λ ∈ (0, 1]: all live weights are scaled by
    /// λ once per arriving chunk. `None` (or 1.0) disables aging.
    pub decay: Option<f64>,
}

impl CoresetConfig {
    /// A plain (no window, no decay) tree with the given bucket size.
    pub fn new(size: usize) -> Self {
        Self { size, window: None, decay: None }
    }

    /// Checks the knobs are usable.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] if `size == 0`, `window == Some(0)`, or
    /// `decay` is not in `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.size == 0 {
            return Err(Error::InvalidConfig("coreset size must be at least 1".into()));
        }
        if self.window == Some(0) {
            return Err(Error::InvalidConfig("coreset window must be at least 1 chunk".into()));
        }
        if let Some(decay) = self.decay {
            if !(decay.is_finite() && decay > 0.0 && decay <= 1.0) {
                return Err(Error::InvalidConfig(format!(
                    "coreset decay must be in (0, 1], got {decay}"
                )));
            }
        }
        Ok(())
    }
}

/// Builds a bounded weighted coreset of `src` with at most `size` points.
///
/// When `src` already fits (`len ≤ size`) the input points pass through
/// verbatim. Otherwise `size` representatives are drawn (with replacement,
/// then deduplicated) from the lightweight-coreset distribution
/// `q(i) = ½·wᵢ/W + ½·wᵢ·d²(xᵢ, μ) / Σⱼ wⱼ·d²(xⱼ, μ)` around the weighted
/// mean `μ`, and each representative is re-weighted with the total input
/// mass nearest to it (ties broken towards the earlier representative, so
/// the result is a deterministic function of `src` and the RNG state).
///
/// Mass conservation is exact for integer weights: every input weight is
/// added to exactly one representative, so the output total is the same
/// sum grouped differently — and grouped sums of integers below 2⁵³ are
/// exact in `f64`.
///
/// # Errors
/// * [`Error::InvalidConfig`] if `size == 0`,
/// * [`Error::EmptyDataset`] if `src` has no points.
pub fn chunk_coreset<S: PointSource + ?Sized>(
    src: &S,
    size: usize,
    rng: &mut StdRng,
) -> Result<WeightedSet> {
    if size == 0 {
        return Err(Error::InvalidConfig("coreset size must be at least 1".into()));
    }
    if src.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let n = src.len();
    let dim = src.dim();
    let mut out = WeightedSet::new(dim)?;
    if n <= size {
        for i in 0..n {
            out.push(src.coords(i), src.weight(i))?;
        }
        return Ok(out);
    }

    // Weighted mean of the chunk.
    let total_w = src.total_weight();
    let mut mean = vec![0.0f64; dim];
    for i in 0..n {
        let w = src.weight(i);
        for (m, &x) in mean.iter_mut().zip(src.coords(i)) {
            *m += w * x;
        }
    }
    for m in &mut mean {
        *m /= total_w;
    }

    // Cumulative sampling distribution q(i). On a degenerate chunk (all
    // points at the mean) the distance term vanishes and q collapses to
    // mass-proportional sampling.
    let mut d2 = vec![0.0f64; n];
    let mut sum_wd2 = 0.0f64;
    for (i, d) in d2.iter_mut().enumerate() {
        *d = sq_dist(src.coords(i), &mean);
        sum_wd2 += src.weight(i) * *d;
    }
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for (i, d) in d2.iter().enumerate() {
        let w = src.weight(i);
        acc += if sum_wd2 > 0.0 { 0.5 * w / total_w + 0.5 * w * d / sum_wd2 } else { w / total_w };
        cum.push(acc);
    }
    let total_q = acc;

    // `size` draws with replacement; duplicates collapse, so the output may
    // hold fewer than `size` representatives (never more).
    let mut chosen = BTreeSet::new();
    for _ in 0..size {
        let t = rng.gen_range(0.0..total_q);
        chosen.insert(cum.partition_point(|&c| c <= t).min(n - 1));
    }
    let reps: Vec<usize> = chosen.into_iter().collect();

    // Nearest-representative mass aggregation. Strict `<` keeps the first
    // (lowest-index) representative on ties, which makes the assignment —
    // and therefore the weights — deterministic.
    let mut agg = vec![0.0f64; reps.len()];
    for i in 0..n {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (j, &r) in reps.iter().enumerate() {
            let d = sq_dist(src.coords(i), src.coords(r));
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        agg[best] += src.weight(i);
    }
    for (j, &r) in reps.iter().enumerate() {
        // A representative that is a duplicate of an earlier one can end up
        // with zero mass; dropping it loses nothing.
        if agg[j] > 0.0 {
            out.push(src.coords(r), agg[j])?;
        }
    }
    Ok(out)
}

/// One live bucket of a [`CoresetTree`]: a coreset covering the contiguous
/// chunk range `first_chunk..=last_chunk` at the given tree level.
#[derive(Debug, Clone)]
pub struct CoresetBucket {
    /// Tree level: 0 for a fresh chunk, `l+1` for a compaction of two
    /// level-`l` buckets.
    pub level: u32,
    /// The bucket's weighted representatives (at most `size` points).
    pub set: WeightedSet,
    /// Raw (undecayed) point mass the bucket summarises — the audit mass.
    pub points: f64,
    /// Oldest chunk id covered.
    pub first_chunk: usize,
    /// Newest chunk id covered.
    pub last_chunk: usize,
}

impl CoresetBucket {
    /// Current total weight of the bucket's representatives.
    pub fn weight(&self) -> f64 {
        self.set.total_weight()
    }
}

/// Record of one pairwise compaction performed during an insert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionInfo {
    /// Level of the bucket the compaction produced.
    pub level: u32,
    /// Representatives in the new bucket.
    pub size: usize,
    /// Weight of the new bucket.
    pub weight: f64,
    /// Combined weight of the two buckets consumed.
    pub consumed_weight: f64,
    /// Oldest chunk id the new bucket covers.
    pub first_chunk: usize,
    /// Newest chunk id the new bucket covers.
    pub last_chunk: usize,
}

/// Record of one bucket evicted by the sliding window during an insert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionInfo {
    /// Level of the evicted bucket.
    pub level: u32,
    /// Representatives the evicted bucket held.
    pub size: usize,
    /// Weight the evicted bucket held.
    pub weight: f64,
    /// Raw audit mass the evicted bucket covered.
    pub points: f64,
    /// Oldest chunk id covered.
    pub first_chunk: usize,
    /// Newest chunk id covered.
    pub last_chunk: usize,
}

/// Everything that happened inside the tree during one chunk insert.
#[derive(Debug, Clone, Default)]
pub struct InsertOutcome {
    /// Pairwise compactions triggered by the binary-counter carry, in the
    /// order they ran (lowest level first).
    pub compactions: Vec<CompactionInfo>,
    /// Buckets evicted by the sliding window before the insert.
    pub evictions: Vec<EvictionInfo>,
}

/// Summary of a tree's shape and mass accounting, embedded in per-cell
/// results, checkpoints and the v7 run report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoresetStats {
    /// Depth of the tree (`max level + 1`; 0 before the first insert).
    pub levels: u32,
    /// Live buckets right now (≤ `floor(log2(chunks)) + 1` without a
    /// window).
    pub live_buckets: usize,
    /// Total representative weight across live buckets (decayed if a decay
    /// factor is configured).
    pub live_weight: f64,
    /// Raw point mass inserted into the tree.
    pub ingested_points: f64,
    /// Raw point mass of quarantined chunks that never reached the tree.
    pub lost_points: f64,
    /// Raw point mass evicted by the sliding window.
    pub expired_points: f64,
    /// Pairwise compactions performed.
    pub compactions: u64,
    /// Chunk coresets inserted (level-0 builds).
    pub builds: u64,
    /// Anytime queries answered.
    pub queries: u64,
}

/// A binary-counter merge-reduce tree over per-chunk coresets.
///
/// Chunks must be inserted in strictly increasing chunk-id order (gaps are
/// fine — a quarantined chunk is reported via [`CoresetTree::note_lost`]
/// instead). Live memory is bounded by `levels × size` representatives.
#[derive(Debug, Clone)]
pub struct CoresetTree {
    cfg: CoresetConfig,
    seed: u64,
    cell: u32,
    buckets: Vec<CoresetBucket>,
    last_chunk: Option<usize>,
    ingested_points: f64,
    lost_points: f64,
    expired_points: f64,
    compactions: u64,
    builds: u64,
    queries: u64,
    max_level: u32,
}

impl CoresetTree {
    /// Creates an empty tree for the given cell.
    ///
    /// # Errors
    /// Propagates [`CoresetConfig::validate`] failures.
    pub fn new(cfg: CoresetConfig, seed: u64, cell: u32) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            seed,
            cell,
            buckets: Vec::new(),
            last_chunk: None,
            ingested_points: 0.0,
            lost_points: 0.0,
            expired_points: 0.0,
            compactions: 0,
            builds: 0,
            queries: 0,
            max_level: 0,
        })
    }

    /// The tree's configuration.
    pub fn config(&self) -> &CoresetConfig {
        &self.cfg
    }

    /// Live buckets, oldest chunk range first.
    pub fn buckets(&self) -> &[CoresetBucket] {
        &self.buckets
    }

    /// Number of live buckets.
    pub fn live_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total representative weight across live buckets.
    pub fn live_weight(&self) -> f64 {
        self.buckets.iter().map(CoresetBucket::weight).sum()
    }

    /// Deepest level any bucket has reached.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Live `(bucket count, total weight)` per level, for ledger replay
    /// checks.
    pub fn level_histogram(&self) -> BTreeMap<u32, (usize, f64)> {
        let mut hist: BTreeMap<u32, (usize, f64)> = BTreeMap::new();
        for b in &self.buckets {
            let e = hist.entry(b.level).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += b.weight();
        }
        hist
    }

    /// Inserts one chunk's coreset as a level-0 bucket and runs the
    /// binary-counter carry: while the two newest buckets share a level
    /// they are compacted into one bucket a level up (the older bucket is
    /// always the left operand, so the result is order-deterministic).
    ///
    /// With a sliding window configured, buckets whose newest chunk is
    /// older than `chunk_id - window` are evicted first; with decay, all
    /// pre-existing live weights are scaled by λ.
    ///
    /// # Errors
    /// * [`Error::InvalidConfig`] if `chunk_id` does not exceed the last
    ///   inserted chunk id,
    /// * propagated construction errors from compaction.
    pub fn insert_chunk(
        &mut self,
        chunk_id: usize,
        set: WeightedSet,
        points: f64,
    ) -> Result<InsertOutcome> {
        if let Some(last) = self.last_chunk {
            if chunk_id <= last {
                return Err(Error::InvalidConfig(format!(
                    "coreset chunks must arrive in increasing order (got {chunk_id} after {last})"
                )));
            }
        }
        let mut outcome = InsertOutcome::default();
        if let Some(window) = self.cfg.window {
            let mut kept = Vec::with_capacity(self.buckets.len());
            for b in self.buckets.drain(..) {
                if b.last_chunk + window <= chunk_id {
                    self.expired_points += b.points;
                    outcome.evictions.push(EvictionInfo {
                        level: b.level,
                        size: b.set.len(),
                        weight: b.weight(),
                        points: b.points,
                        first_chunk: b.first_chunk,
                        last_chunk: b.last_chunk,
                    });
                } else {
                    kept.push(b);
                }
            }
            self.buckets = kept;
        }
        if let Some(decay) = self.cfg.decay {
            if decay < 1.0 {
                for b in &mut self.buckets {
                    b.set.scale_weights(decay)?;
                }
            }
        }
        self.buckets.push(CoresetBucket {
            level: 0,
            set,
            points,
            first_chunk: chunk_id,
            last_chunk: chunk_id,
        });
        self.builds += 1;
        self.ingested_points += points;
        self.last_chunk = Some(chunk_id);
        while self.buckets.len() >= 2
            && self.buckets[self.buckets.len() - 1].level
                == self.buckets[self.buckets.len() - 2].level
        {
            outcome.compactions.push(self.compact_tail()?);
        }
        Ok(outcome)
    }

    /// Compacts the two newest buckets (which share a level) into one.
    fn compact_tail(&mut self) -> Result<CompactionInfo> {
        let right = self.buckets.pop().expect("compact_tail needs two buckets");
        let left = self.buckets.pop().expect("compact_tail needs two buckets");
        debug_assert_eq!(left.level, right.level);
        debug_assert!(left.first_chunk < right.first_chunk);
        let consumed_weight = left.set.total_weight() + right.set.total_weight();
        let level = left.level + 1;
        let mut union = left.set;
        union.extend_from(&right.set)?;
        let set = if union.len() <= self.cfg.size {
            // Small enough already: keep the union verbatim (conserves mass
            // trivially and keeps early trees exact).
            union
        } else {
            let stream = compact_stream(self.cell, level, left.first_chunk);
            chunk_coreset(&union, self.cfg.size, &mut rng_for(self.seed, stream))?
        };
        let bucket = CoresetBucket {
            level,
            points: left.points + right.points,
            first_chunk: left.first_chunk,
            last_chunk: right.last_chunk,
            set,
        };
        let info = CompactionInfo {
            level,
            size: bucket.set.len(),
            weight: bucket.weight(),
            consumed_weight,
            first_chunk: bucket.first_chunk,
            last_chunk: bucket.last_chunk,
        };
        self.buckets.push(bucket);
        self.compactions += 1;
        self.max_level = self.max_level.max(level);
        Ok(info)
    }

    /// Debits the audit for a chunk that was lost before reaching the tree
    /// (quarantined by the fault policy, exactly like the merge path's
    /// lost-mass accounting).
    pub fn note_lost(&mut self, points: f64) {
        self.lost_points += points;
    }

    /// Unions the live buckets into one weighted set, oldest chunk range
    /// first — a deterministic order, so queries are replayable.
    ///
    /// # Errors
    /// [`Error::EmptyDataset`] if the tree has no live buckets.
    pub fn union(&self) -> Result<WeightedSet> {
        let first = self.buckets.first().ok_or(Error::EmptyDataset)?;
        let mut all = WeightedSet::new(first.set.dim())?;
        for b in &self.buckets {
            all.extend_from(&b.set)?;
        }
        Ok(all)
    }

    /// Answers an anytime clustering query: weighted Lloyd (collective
    /// merge, heaviest-point seeding) over the union of live buckets. Cost
    /// is bounded by `live_buckets × size` input points. On a finite
    /// stream, calling this after the last chunk *is* the terminal merge.
    ///
    /// # Errors
    /// [`Error::EmptyDataset`] if the tree is empty; otherwise propagates
    /// the merge clustering's errors.
    pub fn query(
        &mut self,
        cfg: &KMeansConfig,
        merge_restarts: usize,
        rec: Option<&Recorder>,
    ) -> Result<MergeOutput> {
        let all = self.union()?;
        self.queries += 1;
        merge_collective_observed(std::slice::from_ref(&all), cfg, merge_restarts, rec)
    }

    /// [`CoresetTree::query`] without observability hooks.
    ///
    /// # Errors
    /// See [`CoresetTree::query`].
    pub fn query_now(&mut self, cfg: &KMeansConfig, merge_restarts: usize) -> Result<MergeOutput> {
        self.query(cfg, merge_restarts, None)
    }

    /// Snapshot of the tree's shape and mass accounting.
    pub fn stats(&self) -> CoresetStats {
        CoresetStats {
            levels: if self.builds == 0 { 0 } else { self.max_level + 1 },
            live_buckets: self.buckets.len(),
            live_weight: self.live_weight(),
            ingested_points: self.ingested_points,
            lost_points: self.lost_points,
            expired_points: self.expired_points,
            compactions: self.compactions,
            builds: self.builds,
            queries: self.queries,
        }
    }
}

/// RNG stream for the compaction producing `level` starting at
/// `first_chunk` in `cell` — unique, scheduling-independent inputs.
fn compact_stream(cell: u32, level: u32, first_chunk: usize) -> u64 {
    let a = derive_seed(CORESET_STREAM, u64::from(cell));
    let b = derive_seed(a, u64::from(level));
    derive_seed(b, first_chunk as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KMeansConfig;
    use crate::dataset::Dataset;

    fn blob_chunk(seed: u64, n: usize) -> Dataset {
        let mut rng = rng_for(seed, 0xB10B);
        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..n {
            let c = f64::from(rng.gen_range(0..3i32)) * 40.0;
            ds.push(&[c + rng.gen_range(-1.5..1.5), c + rng.gen_range(-1.5..1.5)]).unwrap();
        }
        ds
    }

    #[test]
    fn passthrough_when_chunk_fits() {
        let ds = blob_chunk(1, 8);
        let cs = chunk_coreset(&ds, 16, &mut rng_for(1, 2)).unwrap();
        assert_eq!(cs.len(), 8);
        assert_eq!(cs.as_flat(), ds.as_flat());
        assert!(cs.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn coreset_conserves_integer_mass_and_respects_size() {
        let ds = blob_chunk(7, 500);
        let cs = chunk_coreset(&ds, 64, &mut rng_for(7, 3)).unwrap();
        assert!(cs.len() <= 64);
        assert_eq!(cs.total_weight(), 500.0, "grouped integer sums are exact");
    }

    #[test]
    fn coreset_is_seed_deterministic() {
        let ds = blob_chunk(9, 300);
        let a = chunk_coreset(&ds, 32, &mut rng_for(9, 4)).unwrap();
        let b = chunk_coreset(&ds, 32, &mut rng_for(9, 4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_chunk_still_builds() {
        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..100 {
            ds.push(&[5.0, 5.0]).unwrap();
        }
        let cs = chunk_coreset(&ds, 10, &mut rng_for(3, 3)).unwrap();
        assert_eq!(cs.total_weight(), 100.0);
        assert!(cs.len() <= 10);
    }

    #[test]
    fn tree_follows_binary_counter() {
        let mut tree = CoresetTree::new(CoresetConfig::new(16), 42, 0).unwrap();
        for chunk in 0..13usize {
            let ds = blob_chunk(chunk as u64, 40);
            let cs = chunk_coreset(&ds, 16, &mut rng_for(42, chunk as u64)).unwrap();
            tree.insert_chunk(chunk, cs, 40.0).unwrap();
            let inserted = chunk + 1;
            assert_eq!(tree.live_buckets(), inserted.count_ones() as usize);
            assert!(tree.live_buckets() <= (usize::BITS - inserted.leading_zeros()) as usize);
        }
        let stats = tree.stats();
        assert_eq!(stats.ingested_points, 13.0 * 40.0);
        assert_eq!(stats.builds, 13);
        assert_eq!(tree.live_weight(), 13.0 * 40.0, "mass conserved through compactions");
    }

    #[test]
    fn tree_mass_survives_deep_compaction() {
        let mut tree = CoresetTree::new(CoresetConfig::new(24), 7, 1).unwrap();
        for chunk in 0..64usize {
            let ds = blob_chunk(chunk as u64 + 100, 50);
            let cs = chunk_coreset(&ds, 24, &mut rng_for(7, chunk as u64)).unwrap();
            tree.insert_chunk(chunk, cs, 50.0).unwrap();
        }
        assert_eq!(tree.live_buckets(), 1, "64 = 2^6 chunks collapse to one bucket");
        assert_eq!(tree.live_weight(), 64.0 * 50.0);
        assert_eq!(tree.stats().levels, 7);
    }

    #[test]
    fn tree_is_replay_deterministic() {
        let run = || {
            let mut tree = CoresetTree::new(CoresetConfig::new(20), 5, 2).unwrap();
            for chunk in 0..11usize {
                let ds = blob_chunk(chunk as u64 + 30, 45);
                let cs = chunk_coreset(&ds, 20, &mut rng_for(5, chunk as u64)).unwrap();
                tree.insert_chunk(chunk, cs, 45.0).unwrap();
            }
            tree.union().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn out_of_order_insert_rejected() {
        let mut tree = CoresetTree::new(CoresetConfig::new(8), 1, 0).unwrap();
        let ds = blob_chunk(1, 10);
        let cs = WeightedSet::from_dataset(&ds);
        tree.insert_chunk(3, cs.clone(), 10.0).unwrap();
        assert!(tree.insert_chunk(3, cs.clone(), 10.0).is_err());
        assert!(tree.insert_chunk(2, cs, 10.0).is_err());
    }

    #[test]
    fn window_evicts_old_buckets_into_expired_mass() {
        let mut tree =
            CoresetTree::new(CoresetConfig { size: 16, window: Some(4), decay: None }, 11, 0)
                .unwrap();
        let mut evictions = 0usize;
        for chunk in 0..12usize {
            let ds = blob_chunk(chunk as u64, 30);
            let cs = WeightedSet::from_dataset(&ds);
            let out = tree.insert_chunk(chunk, cs, 30.0).unwrap();
            evictions += out.evictions.len();
            for b in tree.buckets() {
                assert!(b.last_chunk + 4 > chunk, "no live bucket is entirely out of window");
            }
        }
        assert!(evictions > 0, "a 4-chunk window over 12 chunks must evict");
        let stats = tree.stats();
        assert!(stats.expired_points > 0.0);
        assert_eq!(
            stats.ingested_points,
            tree.live_weight() + stats.expired_points,
            "live + expired mass accounts for everything ingested"
        );
    }

    #[test]
    fn decay_scales_live_weight_but_not_audit() {
        let mut tree =
            CoresetTree::new(CoresetConfig { size: 16, window: None, decay: Some(0.5) }, 13, 0)
                .unwrap();
        for chunk in 0..3usize {
            let ds = blob_chunk(chunk as u64, 8);
            tree.insert_chunk(chunk, WeightedSet::from_dataset(&ds), 8.0).unwrap();
        }
        // Weights: 8·0.25 + 8·0.5 + 8 = 14; audit mass stays 24.
        assert!((tree.live_weight() - 14.0).abs() < 1e-9);
        assert_eq!(tree.stats().ingested_points, 24.0);
    }

    #[test]
    fn lost_mass_debits_audit() {
        let mut tree = CoresetTree::new(CoresetConfig::new(8), 3, 0).unwrap();
        let ds = blob_chunk(2, 10);
        tree.insert_chunk(0, WeightedSet::from_dataset(&ds), 10.0).unwrap();
        tree.note_lost(25.0);
        let stats = tree.stats();
        assert_eq!(stats.lost_points, 25.0);
        assert_eq!(stats.ingested_points, 10.0);
    }

    #[test]
    fn query_runs_weighted_lloyd_over_union() {
        let mut tree = CoresetTree::new(CoresetConfig::new(32), 21, 0).unwrap();
        for chunk in 0..6usize {
            let ds = blob_chunk(chunk as u64 + 50, 120);
            let cs = chunk_coreset(&ds, 32, &mut rng_for(21, chunk as u64)).unwrap();
            tree.insert_chunk(chunk, cs, 120.0).unwrap();
        }
        let cfg = KMeansConfig::paper(3, 77);
        let out = tree.query_now(&cfg, 3).unwrap();
        assert_eq!(out.centroids.k(), 3);
        assert!(out.input_centroids <= tree.live_buckets() * 32);
        assert!((out.cluster_weights.iter().sum::<f64>() - 720.0).abs() < 1e-9);
        assert_eq!(tree.stats().queries, 1);
    }

    #[test]
    fn empty_tree_query_fails_cleanly() {
        let mut tree = CoresetTree::new(CoresetConfig::new(8), 0, 0).unwrap();
        let cfg = KMeansConfig::paper(2, 1);
        assert!(matches!(tree.query_now(&cfg, 1), Err(Error::EmptyDataset)));
    }

    #[test]
    fn config_validation() {
        assert!(CoresetConfig::new(0).validate().is_err());
        assert!(CoresetConfig { size: 8, window: Some(0), decay: None }.validate().is_err());
        assert!(CoresetConfig { size: 8, window: None, decay: Some(0.0) }.validate().is_err());
        assert!(CoresetConfig { size: 8, window: None, decay: Some(1.5) }.validate().is_err());
        assert!(CoresetConfig { size: 8, window: Some(2), decay: Some(0.9) }.validate().is_ok());
    }
}
