//! Entropy-Constrained Vector Quantization (ECVQ).
//!
//! The paper's §3.3 remarks point at ECVQ (Chou, Lookabaugh & Gray 1989;
//! Braverman 2002) as the answer to "which k for which partition size":
//! instead of a fixed `k`, ECVQ starts from a maximum `k` and a Lagrangian
//! penalty `λ` on code length. A point is assigned to the centroid
//! minimizing `‖x − c_j‖² + λ·len_j` with `len_j = −log₂ p_j`, so small
//! clusters (long code words) are penalized, "some seeds might be starved,
//! and can be discarded. This allows to find an optimal k for a partition on
//! the fly."
//!
//! This module implements that future-work extension; the
//! `ablation_seeding`/compression harnesses exercise it.

use crate::config::LloydConfig;
use crate::dataset::{Centroids, PointSource, WeightedSet};
use crate::error::{Error, Result};
use crate::point::sq_dist;
use crate::seeding::{rng_for, seed_centroids};
use serde::{Deserialize, Serialize};

/// ECVQ parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EcvqConfig {
    /// Upper bound on the codebook size (the paper: "define a maximum k").
    pub max_k: usize,
    /// Lagrange multiplier trading distortion for rate. `0.0` reduces ECVQ
    /// to plain k-means with `k = max_k` (minus starvation).
    pub lambda: f64,
    /// Convergence threshold on the per-iteration decrease of the
    /// Lagrangian cost `J = distortion + λ·rate·W`.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// RNG seed for the initial codebook (random distinct points).
    pub seed: u64,
}

impl Default for EcvqConfig {
    fn default() -> Self {
        Self {
            max_k: 40,
            lambda: 1.0,
            epsilon: crate::config::PAPER_EPSILON,
            max_iters: crate::config::DEFAULT_MAX_ITERS,
            seed: 0,
        }
    }
}

impl EcvqConfig {
    fn validate(&self) -> Result<()> {
        if self.max_k == 0 {
            return Err(Error::ZeroK);
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(Error::InvalidConfig("lambda must be finite and >= 0".into()));
        }
        LloydConfig { epsilon: self.epsilon, max_iters: self.max_iters, ..LloydConfig::default() }
            .validate()
    }
}

/// Result of an ECVQ run.
#[derive(Debug, Clone, PartialEq)]
pub struct EcvqResult {
    /// Surviving codebook (`k_final ≤ max_k` centroids).
    pub centroids: Centroids,
    /// Weight captured by each surviving centroid.
    pub cluster_weights: Vec<f64>,
    /// Empirical probability of each surviving centroid.
    pub probabilities: Vec<f64>,
    /// Weighted SSE of the final assignment (distortion `D`).
    pub distortion: f64,
    /// Average code length in bits (`R = −Σ p_j log₂ p_j` under the
    /// empirical assignment distribution).
    pub rate_bits: f64,
    /// Final Lagrangian cost `D + λ·R·W`.
    pub cost: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the cost delta criterion was met.
    pub converged: bool,
}

impl EcvqResult {
    /// The adaptive codebook size the paper wants "found on the fly".
    pub fn final_k(&self) -> usize {
        self.centroids.k()
    }

    /// Converts the codebook into a weighted centroid set, ready to feed
    /// the merge step.
    pub fn to_weighted_set(&self) -> Result<WeightedSet> {
        let mut ws = WeightedSet::new(self.centroids.dim())?;
        for (j, c) in self.centroids.iter().enumerate() {
            ws.push(c, self.cluster_weights[j])?;
        }
        Ok(ws)
    }
}

/// Runs entropy-constrained VQ on a (possibly weighted) point source.
pub fn ecvq<S: PointSource + ?Sized>(src: &S, cfg: &EcvqConfig) -> Result<EcvqResult> {
    cfg.validate()?;
    if src.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let n = src.len();
    let dim = src.dim();
    let k0 = cfg.max_k.min(n);
    let mut rng = rng_for(cfg.seed, 0);
    let init = seed_centroids(src, k0, crate::config::SeedMode::RandomPoints, &mut rng)?;
    let total_w = src.total_weight();

    // Live codebook as (coords, probability) with uniform initial code
    // lengths.
    let mut cents: Vec<f64> = init.as_flat().to_vec();
    let mut probs: Vec<f64> = vec![1.0 / k0 as f64; k0];

    let mut prev_cost = f64::INFINITY;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut assignments = vec![0usize; n];
    let mut last = IterationOut::default();

    while iterations < cfg.max_iters {
        let k = probs.len();
        let lengths: Vec<f64> =
            probs.iter().map(|&p| if p > 0.0 { -p.log2() } else { f64::INFINITY }).collect();

        // Assignment under the Lagrangian cost.
        let mut sums = vec![0.0f64; k * dim];
        let mut weights = vec![0.0f64; k];
        let mut distortion = 0.0;
        let mut rate_w = 0.0; // Σ w_i · len(assigned)
        for (i, slot) in assignments.iter_mut().enumerate().take(n) {
            let x = src.coords(i);
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            let mut best_d2 = 0.0;
            for j in 0..k {
                let d2 = sq_dist(x, &cents[j * dim..(j + 1) * dim]);
                let c = d2 + cfg.lambda * lengths[j];
                if c < best_cost {
                    best_cost = c;
                    best = j;
                    best_d2 = d2;
                }
            }
            let w = src.weight(i);
            *slot = best;
            weights[best] += w;
            distortion += w * best_d2;
            rate_w += w * lengths[best];
            for (s, c) in sums[best * dim..(best + 1) * dim].iter_mut().zip(x) {
                *s += w * c;
            }
        }
        let cost = distortion + cfg.lambda * rate_w;
        iterations += 1;

        // Centroid + probability update, discarding starved codewords.
        let mut new_cents = Vec::with_capacity(k * dim);
        let mut new_probs = Vec::with_capacity(k);
        for j in 0..k {
            if weights[j] > 0.0 {
                for d in 0..dim {
                    new_cents.push(sums[j * dim + d] / weights[j]);
                }
                new_probs.push(weights[j] / total_w);
            }
        }
        last = IterationOut { distortion, rate_w, cost, weights, k };
        let delta = prev_cost - cost;
        prev_cost = cost;
        cents = new_cents;
        probs = new_probs;
        if delta >= 0.0 && delta <= cfg.epsilon {
            converged = true;
            break;
        }
    }

    // Rebuild final stats against the last assignment (weights vector from
    // the last iteration still indexes the pre-discard codebook; surviving
    // entries are those with positive weight, in order).
    let survivors: Vec<usize> = (0..last.k).filter(|&j| last.weights[j] > 0.0).collect();
    let cluster_weights: Vec<f64> = survivors.iter().map(|&j| last.weights[j]).collect();
    let probabilities: Vec<f64> = cluster_weights.iter().map(|w| w / total_w).collect();
    let rate_bits = last.rate_w / total_w;
    let centroids = Centroids::from_flat(dim, cents)?;
    debug_assert_eq!(centroids.k(), cluster_weights.len());
    Ok(EcvqResult {
        centroids,
        cluster_weights,
        probabilities,
        distortion: last.distortion,
        rate_bits,
        cost: last.cost,
        iterations,
        converged,
    })
}

#[derive(Default)]
struct IterationOut {
    distortion: f64,
    rate_w: f64,
    cost: f64,
    weights: Vec<f64>,
    k: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn blobs(n_per: usize, centers: &[f64]) -> Dataset {
        let mut ds = Dataset::new(1).unwrap();
        for &c in centers {
            for i in 0..n_per {
                ds.push(&[c + (i % 5) as f64 * 0.01]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn lambda_zero_behaves_like_kmeans() {
        let ds = blobs(20, &[0.0, 100.0]);
        let cfg = EcvqConfig { max_k: 2, lambda: 0.0, seed: 3, ..EcvqConfig::default() };
        let res = ecvq(&ds, &cfg).unwrap();
        assert_eq!(res.final_k(), 2);
        let mut xs: Vec<f64> = res.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0] < 1.0 && xs[1] > 99.0);
        assert!(res.converged);
    }

    #[test]
    fn large_lambda_starves_clusters() {
        // Strong rate penalty collapses a 2-blob set into fewer codewords
        // than max_k = 8.
        let ds = blobs(25, &[0.0, 10.0]);
        let cfg = EcvqConfig { max_k: 8, lambda: 1000.0, seed: 1, ..EcvqConfig::default() };
        let res = ecvq(&ds, &cfg).unwrap();
        assert!(res.final_k() < 8, "no starvation at final_k = {}", res.final_k());
        assert!(res.final_k() >= 1);
    }

    #[test]
    fn rate_and_probabilities_are_consistent() {
        let ds = blobs(30, &[0.0, 50.0, 100.0]);
        let cfg = EcvqConfig { max_k: 3, lambda: 0.1, seed: 5, ..EcvqConfig::default() };
        let res = ecvq(&ds, &cfg).unwrap();
        let psum: f64 = res.probabilities.iter().sum();
        assert!((psum - 1.0).abs() < 1e-12);
        // Unlucky seeding may starve one codeword (ECVQ never re-seeds), so
        // 2 or 3 survivors are both legitimate; the rate must match the
        // entropy of the surviving assignment distribution either way.
        assert!(res.final_k() >= 2 && res.final_k() <= 3);
        let entropy: f64 = res.probabilities.iter().map(|&p| -p * p.log2()).sum();
        assert!((res.rate_bits - entropy).abs() < 1e-9, "rate = {}", res.rate_bits);
        let wsum: f64 = res.cluster_weights.iter().sum();
        assert_eq!(wsum, 90.0);
    }

    #[test]
    fn cost_decomposition_holds() {
        let ds = blobs(20, &[0.0, 10.0]);
        let cfg = EcvqConfig { max_k: 4, lambda: 2.0, seed: 7, ..EcvqConfig::default() };
        let res = ecvq(&ds, &cfg).unwrap();
        let total_w = 40.0;
        assert!((res.cost - (res.distortion + cfg.lambda * res.rate_bits * total_w)).abs() < 1e-9);
    }

    #[test]
    fn to_weighted_set_round_trips_weights() {
        let ds = blobs(15, &[0.0, 5.0]);
        let cfg = EcvqConfig { max_k: 2, lambda: 0.01, seed: 2, ..EcvqConfig::default() };
        let res = ecvq(&ds, &cfg).unwrap();
        let ws = res.to_weighted_set().unwrap();
        assert_eq!(ws.len(), res.final_k());
        assert_eq!(ws.total_weight(), 30.0);
    }

    #[test]
    fn errors_on_bad_config_and_input() {
        let ds = blobs(5, &[0.0]);
        assert!(ecvq(&ds, &EcvqConfig { max_k: 0, ..EcvqConfig::default() }).is_err());
        assert!(ecvq(&ds, &EcvqConfig { lambda: -1.0, ..EcvqConfig::default() }).is_err());
        let empty = Dataset::new(1).unwrap();
        assert_eq!(ecvq(&empty, &EcvqConfig::default()), Err(Error::EmptyDataset));
    }

    #[test]
    fn max_k_clamped_to_point_count() {
        let ds = blobs(2, &[0.0]); // 2 points
        let cfg = EcvqConfig { max_k: 40, lambda: 0.0, ..EcvqConfig::default() };
        let res = ecvq(&ds, &cfg).unwrap();
        assert!(res.final_k() <= 2);
    }
}
