//! Fused SoA assignment kernels for the Lloyd hot path.
//!
//! The assignment step is the `O(n · k · dim)` core every experiment in the
//! paper stands on. The naive scan ([`crate::point::nearest_centroid`])
//! walks centroids one at a time in AoS order, so the compiler must
//! serialize the per-candidate accumulation. This module restructures the
//! search around the norm expansion
//!
//! ```text
//! ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²
//! ```
//!
//! with the centroid table transposed into **coordinate-major planes**:
//! plane `d` holds coordinate `d` of *all* centroids contiguously (padded
//! to a multiple of [`LANES`]). The screen then runs `d` as the *outer*
//! loop — one broadcast of `x[d]` per plane and a contiguous
//! multiply-accumulate sweep across all centroids — so every SIMD lane
//! carries an independent accumulator chain and the loop is
//! throughput-bound instead of latency-bound. (The earlier shape, blocks
//! of 8 centroids with `d` innermost, serializes each block behind a
//! `dim`-deep FMA dependency chain.) `‖c‖²` is computed once per layout
//! (once per Lloyd iteration), `‖x‖²` once per point.
//!
//! ## Exactness: the rescue pass
//!
//! The expansion is algebraically equal to the squared distance but not
//! bit-equal in floating point, and a k-means assignment must not silently
//! flip near-ties: the differential test suite (and the paper's
//! determinism story) requires the fused kernel to make **the same
//! decision as the scalar scan on every input**. The kernel therefore
//! treats the expanded values as a *screen*, not an answer:
//!
//! 1. compute `approx_j = ‖x‖² − 2·x·c_j + ‖c_j‖²` for every centroid,
//! 2. bound the worst-case disagreement between `approx_j` and the
//!    scalar-computed `sq_dist(x, c_j)` by
//!    `margin = 16 (dim + 4) ε (‖x‖² + max_j ‖c_j‖²)` — a standard
//!    summation-error bound (each of the two computations errs by at most
//!    `~(dim+2) ε` relative to magnitudes bounded by `‖x‖² + ‖c_j‖²`),
//!    widened by a safety factor,
//! 3. **rescue**: recompute the exact [`crate::point::sq_dist`] for every
//!    candidate within `2·margin` of the best screened value and pick the
//!    winner among those by the scalar's own values and tie-break
//!    (lowest index).
//!
//! Any candidate outside the rescue window is strictly worse than the
//! rescued winner under the scalar's arithmetic, so the returned index
//! *and* the returned squared distance are bit-identical to
//! [`crate::point::nearest_centroid`]. On real data the window almost
//! never admits more than one candidate (the tallies are surfaced through
//! [`KernelStats`] and the `pmkm-obs` recorder), so the exactness costs
//! one `O(dim)` recomputation per point — noise against the `O(k · dim)`
//! screen.
//!
//! Ties and duplicate centroids are exact by construction: identical
//! centroid coordinates produce identical `approx` values and identical
//! rescued distances, and both layers break ties toward the lower index.
//! The per-centroid dot product is accumulated in ascending-`d` order in
//! both layouts, so transposing the table does not reorder the summation.
//!
//! The strategy is selected per run via [`KernelKind`] on
//! [`crate::config::LloydConfig`]; see DESIGN.md §9 for when each wins.
//!
//! This module is the crate's sole `unsafe` exception (the crate denies
//! `unsafe_code` elsewhere): the AVX2/AVX-512 screen sweeps use raw
//! `std::arch` intrinsics. Every pointer access is in bounds by
//! construction — `k_pad` is a multiple of [`LANES`] and all loads/stores
//! stay below `k_pad` — and each `#[target_feature]` function is only
//! reachable through a [`ScreenIsa`] variant constructed after
//! `is_x86_feature_detected!` confirmed the features.
#![allow(unsafe_code)]

use crate::point::sq_dist;

pub use crate::config::KernelKind;

/// Padding granularity of the centroid planes: eight f64 lanes span one
/// AVX-512 (or two AVX2, or four SSE2) vectors, so the finalize/min loop
/// can be written over fixed-size `[f64; LANES]` chunks.
pub const LANES: usize = 8;

/// Safety factor applied to the analytic FP-error bound of the norm
/// expansion (see the module docs). Loose on purpose: widening the rescue
/// window only costs a few extra exact recomputations.
const MARGIN_SCALE: f64 = 16.0;

/// Work tallies of the fused kernel, reported through the observability
/// recorder when one is attached to the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Points assigned through the fused path.
    pub points: u64,
    /// Candidates whose exact distance was recomputed in the rescue pass
    /// (at least one per point — the screened winner itself).
    pub rescued: u64,
}

impl KernelStats {
    /// Mean rescued candidates per point (`1.0` is the floor; values near
    /// it mean the screen almost always decides alone).
    pub fn rescues_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.rescued as f64 / self.points as f64
        }
    }
}

/// Instruction set the screen sweep dispatches to, detected once per
/// layout. The screen is a *bound*, not an answer (the rescue pass
/// re-derives exact scalar distances), so the wider paths may use FMA —
/// fused rounding only shrinks the screen's error, never the margin's
/// validity — and every path returns the same rescued result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScreenIsa {
    /// Autovectorized fallback (SSE2 on baseline x86-64 builds).
    Portable,
    /// 4-wide `__m256d` with FMA, runtime-detected.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// 8-wide `__m512d` with FMA, runtime-detected.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn detect_isa() -> ScreenIsa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return ScreenIsa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return ScreenIsa::Avx2Fma;
        }
    }
    ScreenIsa::Portable
}

/// Centroids laid out for the fused kernel: coordinate-major planes for
/// the vectorized screen, plus the original AoS table for the exact
/// rescue pass. Built once per Lloyd iteration (`O(k · dim)`).
#[derive(Debug, Clone)]
pub struct FusedLayout {
    dim: usize,
    k: usize,
    /// `k` rounded up to a whole number of [`LANES`]; the stride of one
    /// plane and the length of `cnorm2` / the screen scratch.
    k_pad: usize,
    /// `dim` planes of `k_pad` values each: `planes[d·k_pad + j]` is
    /// coordinate `d` of centroid `j`. Padding lanes hold zeros.
    planes: Vec<f64>,
    /// `‖c_j‖²` per centroid, padded with `+inf` so padding lanes can
    /// never win the screen.
    cnorm2: Vec<f64>,
    /// The original row-major `k × dim` table, for the rescue pass.
    aos: Vec<f64>,
    /// `max_j ‖c_j‖²`, one term of the per-point error margin.
    max_cnorm2: f64,
    isa: ScreenIsa,
}

impl FusedLayout {
    /// Transposes a flat row-major `k × dim` centroid table into
    /// coordinate-major planes. `centroids.len()` must be a non-zero
    /// multiple of `dim`.
    pub fn new(centroids: &[f64], dim: usize) -> Self {
        debug_assert!(dim > 0 && !centroids.is_empty() && centroids.len().is_multiple_of(dim));
        let k = centroids.len() / dim;
        let k_pad = k.div_ceil(LANES) * LANES;
        let mut planes = vec![0.0; dim * k_pad];
        let mut cnorm2 = vec![f64::INFINITY; k_pad];
        let mut max_cnorm2 = 0.0f64;
        for (j, c) in centroids.chunks_exact(dim).enumerate() {
            for (d, &v) in c.iter().enumerate() {
                planes[d * k_pad + j] = v;
            }
            let n2 = c.iter().map(|v| v * v).sum::<f64>();
            cnorm2[j] = n2;
            max_cnorm2 = max_cnorm2.max(n2);
        }
        Self {
            dim,
            k,
            k_pad,
            planes,
            cnorm2,
            aos: centroids.to_vec(),
            max_cnorm2,
            isa: detect_isa(),
        }
    }

    /// Label of the screen path this layout dispatches to
    /// (`"avx512f"`, `"avx2+fma"`, or `"portable"`).
    pub fn isa_label(&self) -> &'static str {
        match self.isa {
            ScreenIsa::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            ScreenIsa::Avx2Fma => "avx2+fma",
            #[cfg(target_arch = "x86_64")]
            ScreenIsa::Avx512 => "avx512f",
        }
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Required length of the caller-provided screen scratch buffer
    /// (`k` rounded up to a whole number of [`LANES`]).
    pub fn scratch_len(&self) -> usize {
        self.k_pad
    }

    /// Nearest centroid to `x`: index and **scalar-exact** squared
    /// distance, bit-identical to [`crate::point::nearest_centroid`].
    ///
    /// `scratch` must be at least [`Self::scratch_len`] long; it holds the
    /// screened distances and carries no state between calls.
    #[inline]
    pub fn nearest(&self, x: &[f64], scratch: &mut [f64]) -> (usize, f64) {
        let mut stats = KernelStats::default();
        self.nearest_counted(x, scratch, &mut stats)
    }

    /// [`Self::nearest`] with work tallies accumulated into `stats`.
    #[inline]
    pub fn nearest_counted(
        &self,
        x: &[f64],
        scratch: &mut [f64],
        stats: &mut KernelStats,
    ) -> (usize, f64) {
        debug_assert_eq!(x.len(), self.dim);
        debug_assert!(scratch.len() >= self.k_pad);
        let approx = &mut scratch[..self.k_pad];

        // --- Screen: ‖x‖² − 2·x·c + ‖c‖² for every centroid -----------
        let px2 = x.iter().map(|v| v * v).sum::<f64>();
        let best_a = match self.isa {
            ScreenIsa::Portable => self.screen_portable(x, px2, approx),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the variant is only constructed after
            // `is_x86_feature_detected!` confirmed the features.
            ScreenIsa::Avx2Fma => unsafe { self.screen_avx2(x, px2, approx) },
            #[cfg(target_arch = "x86_64")]
            ScreenIsa::Avx512 => unsafe { self.screen_avx512(x, px2, approx) },
        };

        // --- Rescue: exact distances within the error window ----------
        // Both the screen and the scalar sum err by at most
        // ~(dim + 2)·ε relative to ‖x‖² + ‖c‖², so 2·margin separates
        // "provably worse under scalar arithmetic" from "must check".
        let margin =
            MARGIN_SCALE * (self.dim as f64 + 4.0) * f64::EPSILON * (px2 + self.max_cnorm2);
        let window = best_a + 2.0 * margin;
        let mut win = usize::MAX;
        let mut win_d = f64::INFINITY;
        // A scalar `a <= window` sweep over k candidates costs more than
        // the vectorized screen itself, so the SIMD paths compress the
        // window test into a compare-mask pass first. Candidate indices
        // come out ascending either way, preserving the tie-break.
        let mut candidates = [0u32; MAX_WINDOW_CANDIDATES];
        let found = match self.isa {
            ScreenIsa::Portable => None,
            #[cfg(target_arch = "x86_64")]
            // SAFETY: variant constructed only after feature detection.
            ScreenIsa::Avx2Fma => unsafe { collect_window_avx2(approx, window, &mut candidates) },
            #[cfg(target_arch = "x86_64")]
            ScreenIsa::Avx512 => unsafe { collect_window_avx512(approx, window, &mut candidates) },
        };
        match found {
            Some(count) => {
                // Padding lanes can slip into the mask when the window
                // overflowed to +inf; they are not real candidates.
                for &j in candidates[..count].iter().filter(|&&j| (j as usize) < self.k) {
                    let j = j as usize;
                    let d = sq_dist(x, &self.aos[j * self.dim..(j + 1) * self.dim]);
                    stats.rescued += 1;
                    if d < win_d {
                        win_d = d;
                        win = j;
                    }
                }
            }
            // Portable path, or more window candidates than the fixed
            // buffer holds (degenerate near-ties): plain scalar sweep.
            None => {
                for (j, &a) in approx[..self.k].iter().enumerate() {
                    if a <= window {
                        let d = sq_dist(x, &self.aos[j * self.dim..(j + 1) * self.dim]);
                        stats.rescued += 1;
                        if d < win_d {
                            win_d = d;
                            win = j;
                        }
                    }
                }
            }
        }
        stats.points += 1;
        if win == usize::MAX {
            // Unreachable with finite inputs (the screen winner is always
            // inside the window), but an overflowed screen (inf/NaN approx
            // values) must degrade to the exact scan, never to a bogus index.
            let (j, d) = crate::point::nearest_centroid(x, &self.aos, self.dim);
            stats.rescued += self.k as u64;
            return (j, d);
        }
        (win, win_d)
    }

    /// Screen sweep alone (no rescue): fills `scratch` with the expanded
    /// values and returns the minimum. Exposed for the bench harness and
    /// diagnostics; everything else should call [`Self::nearest`].
    #[doc(hidden)]
    #[inline]
    pub fn screen_only(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        let px2 = x.iter().map(|v| v * v).sum::<f64>();
        let approx = &mut scratch[..self.k_pad];
        match self.isa {
            ScreenIsa::Portable => self.screen_portable(x, px2, approx),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: variant constructed only after feature detection.
            ScreenIsa::Avx2Fma => unsafe { self.screen_avx2(x, px2, approx) },
            #[cfg(target_arch = "x86_64")]
            ScreenIsa::Avx512 => unsafe { self.screen_avx512(x, px2, approx) },
        }
    }

    /// Autovectorized screen sweep: dot products accumulate plane by
    /// plane (ascending `d`) into `approx` — one broadcast of `x[d]` per
    /// plane, then a contiguous mul-add sweep whose lanes are independent
    /// accumulator chains — after which a second sweep finalizes the
    /// expansion in place and folds the running minimum in lane-wise.
    /// Returns the minimum screened value.
    fn screen_portable(&self, x: &[f64], px2: f64, approx: &mut [f64]) -> f64 {
        approx.fill(0.0);
        for (d, &xd) in x.iter().enumerate() {
            let plane = &self.planes[d * self.k_pad..(d + 1) * self.k_pad];
            for (a, &p) in approx.iter_mut().zip(plane) {
                *a += xd * p;
            }
        }
        // Eight independent lane minima reduce once at the end: a serial
        // k-deep min chain over the finished buffer costs more than the
        // screen itself.
        let mut mins = [f64::INFINITY; LANES];
        for (out, cn) in approx.chunks_exact_mut(LANES).zip(self.cnorm2.chunks_exact(LANES)) {
            let out: &mut [f64; LANES] = out.try_into().expect("approx block");
            let cn: &[f64; LANES] = cn.try_into().expect("cnorm2 block");
            for l in 0..LANES {
                out[l] = px2 - 2.0 * out[l] + cn[l];
            }
            for l in 0..LANES {
                // Select form (not f64::min) so NaN keeps the old minimum
                // and the loop lowers to a plain vector compare + blend.
                mins[l] = if out[l] < mins[l] { out[l] } else { mins[l] };
            }
        }
        reduce_min8(&mins)
    }

    /// AVX-512 screen sweep: panels of 32 centroids (four `__m512d`
    /// accumulators, so the `dim`-deep FMA chains of four vectors
    /// interleave instead of serializing) with an 8-wide tail; `x[d]`
    /// broadcast once per plane per panel.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` CPU feature.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn screen_avx512(&self, x: &[f64], px2: f64, approx: &mut [f64]) -> f64 {
        use std::arch::x86_64::*;
        let pl = self.planes.as_ptr();
        let cn = self.cnorm2.as_ptr();
        let out = approx.as_mut_ptr();
        let k_pad = self.k_pad;
        let two = _mm512_set1_pd(2.0);
        let px2v = _mm512_set1_pd(px2);
        // vminpd returns its *second* operand when either is NaN, so
        // `min(fresh, mins)` keeps the running minimum NaN-free.
        let mut mins = _mm512_set1_pd(f64::INFINITY);
        let mut jb = 0usize;
        while jb + 32 <= k_pad {
            let mut a0 = _mm512_setzero_pd();
            let mut a1 = _mm512_setzero_pd();
            let mut a2 = _mm512_setzero_pd();
            let mut a3 = _mm512_setzero_pd();
            for (d, &xd) in x.iter().enumerate() {
                let v = _mm512_set1_pd(xd);
                let base = pl.add(d * k_pad + jb);
                a0 = _mm512_fmadd_pd(v, _mm512_loadu_pd(base), a0);
                a1 = _mm512_fmadd_pd(v, _mm512_loadu_pd(base.add(8)), a1);
                a2 = _mm512_fmadd_pd(v, _mm512_loadu_pd(base.add(16)), a2);
                a3 = _mm512_fmadd_pd(v, _mm512_loadu_pd(base.add(24)), a3);
            }
            // out = (px2 − 2·dot) + cn, same association as the portable
            // sweep.
            let t0 = _mm512_add_pd(_mm512_fnmadd_pd(two, a0, px2v), _mm512_loadu_pd(cn.add(jb)));
            let t1 =
                _mm512_add_pd(_mm512_fnmadd_pd(two, a1, px2v), _mm512_loadu_pd(cn.add(jb + 8)));
            let t2 =
                _mm512_add_pd(_mm512_fnmadd_pd(two, a2, px2v), _mm512_loadu_pd(cn.add(jb + 16)));
            let t3 =
                _mm512_add_pd(_mm512_fnmadd_pd(two, a3, px2v), _mm512_loadu_pd(cn.add(jb + 24)));
            _mm512_storeu_pd(out.add(jb), t0);
            _mm512_storeu_pd(out.add(jb + 8), t1);
            _mm512_storeu_pd(out.add(jb + 16), t2);
            _mm512_storeu_pd(out.add(jb + 24), t3);
            mins = _mm512_min_pd(t0, mins);
            mins = _mm512_min_pd(t1, mins);
            mins = _mm512_min_pd(t2, mins);
            mins = _mm512_min_pd(t3, mins);
            jb += 32;
        }
        while jb < k_pad {
            let mut a0 = _mm512_setzero_pd();
            for (d, &xd) in x.iter().enumerate() {
                let v = _mm512_set1_pd(xd);
                a0 = _mm512_fmadd_pd(v, _mm512_loadu_pd(pl.add(d * k_pad + jb)), a0);
            }
            let t0 = _mm512_add_pd(_mm512_fnmadd_pd(two, a0, px2v), _mm512_loadu_pd(cn.add(jb)));
            _mm512_storeu_pd(out.add(jb), t0);
            mins = _mm512_min_pd(t0, mins);
            jb += 8;
        }
        let mut lanes = [0.0f64; LANES];
        _mm512_storeu_pd(lanes.as_mut_ptr(), mins);
        reduce_min8(&lanes)
    }

    /// AVX2+FMA screen sweep: panels of 16 centroids (four `__m256d`
    /// accumulators) with a 4-wide tail. Same contract as
    /// [`Self::screen_avx512`].
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` CPU features.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn screen_avx2(&self, x: &[f64], px2: f64, approx: &mut [f64]) -> f64 {
        use std::arch::x86_64::*;
        let pl = self.planes.as_ptr();
        let cn = self.cnorm2.as_ptr();
        let out = approx.as_mut_ptr();
        let k_pad = self.k_pad;
        let two = _mm256_set1_pd(2.0);
        let px2v = _mm256_set1_pd(px2);
        let mut mins = _mm256_set1_pd(f64::INFINITY);
        let mut jb = 0usize;
        while jb + 16 <= k_pad {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            for (d, &xd) in x.iter().enumerate() {
                let v = _mm256_set1_pd(xd);
                let base = pl.add(d * k_pad + jb);
                a0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(base), a0);
                a1 = _mm256_fmadd_pd(v, _mm256_loadu_pd(base.add(4)), a1);
                a2 = _mm256_fmadd_pd(v, _mm256_loadu_pd(base.add(8)), a2);
                a3 = _mm256_fmadd_pd(v, _mm256_loadu_pd(base.add(12)), a3);
            }
            let t0 = _mm256_add_pd(_mm256_fnmadd_pd(two, a0, px2v), _mm256_loadu_pd(cn.add(jb)));
            let t1 =
                _mm256_add_pd(_mm256_fnmadd_pd(two, a1, px2v), _mm256_loadu_pd(cn.add(jb + 4)));
            let t2 =
                _mm256_add_pd(_mm256_fnmadd_pd(two, a2, px2v), _mm256_loadu_pd(cn.add(jb + 8)));
            let t3 =
                _mm256_add_pd(_mm256_fnmadd_pd(two, a3, px2v), _mm256_loadu_pd(cn.add(jb + 12)));
            _mm256_storeu_pd(out.add(jb), t0);
            _mm256_storeu_pd(out.add(jb + 4), t1);
            _mm256_storeu_pd(out.add(jb + 8), t2);
            _mm256_storeu_pd(out.add(jb + 12), t3);
            mins = _mm256_min_pd(t0, mins);
            mins = _mm256_min_pd(t1, mins);
            mins = _mm256_min_pd(t2, mins);
            mins = _mm256_min_pd(t3, mins);
            jb += 16;
        }
        while jb < k_pad {
            let mut a0 = _mm256_setzero_pd();
            for (d, &xd) in x.iter().enumerate() {
                let v = _mm256_set1_pd(xd);
                a0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(pl.add(d * k_pad + jb)), a0);
            }
            let t0 = _mm256_add_pd(_mm256_fnmadd_pd(two, a0, px2v), _mm256_loadu_pd(cn.add(jb)));
            _mm256_storeu_pd(out.add(jb), t0);
            mins = _mm256_min_pd(t0, mins);
            jb += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), mins);
        let m01 = if lanes[1] < lanes[0] { lanes[1] } else { lanes[0] };
        let m23 = if lanes[3] < lanes[2] { lanes[3] } else { lanes[2] };
        if m23 < m01 {
            m23
        } else {
            m01
        }
    }
}

/// Capacity of the fixed rescue-candidate buffer the masked window scan
/// fills. On real data the window admits one candidate; overflowing the
/// buffer (pathological near-tie pile-ups) falls back to the scalar sweep.
const MAX_WINDOW_CANDIDATES: usize = 64;

/// Masked window scan, AVX-512: compare all screened values (including
/// padding) against `window` eight at a time and collect qualifying
/// indices in ascending order. Returns `None` when `out` would overflow.
///
/// # Safety
///
/// Requires the `avx512f` CPU feature; `approx.len()` must be a multiple
/// of [`LANES`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn collect_window_avx512(
    approx: &[f64],
    window: f64,
    out: &mut [u32; MAX_WINDOW_CANDIDATES],
) -> Option<usize> {
    use std::arch::x86_64::*;
    let w = _mm512_set1_pd(window);
    let p = approx.as_ptr();
    let mut count = 0usize;
    let mut jb = 0usize;
    while jb < approx.len() {
        // LE_OQ: NaN compares false, so poisoned lanes never qualify.
        let mut m = _mm512_cmp_pd_mask::<_CMP_LE_OQ>(_mm512_loadu_pd(p.add(jb)), w) as u32;
        while m != 0 {
            if count == MAX_WINDOW_CANDIDATES {
                return None;
            }
            out[count] = jb as u32 + m.trailing_zeros();
            count += 1;
            m &= m - 1;
        }
        jb += 8;
    }
    Some(count)
}

/// Masked window scan, AVX2: same contract as
/// [`collect_window_avx512`], four lanes at a time.
///
/// # Safety
///
/// Requires the `avx2` CPU feature; `approx.len()` must be a multiple of
/// [`LANES`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn collect_window_avx2(
    approx: &[f64],
    window: f64,
    out: &mut [u32; MAX_WINDOW_CANDIDATES],
) -> Option<usize> {
    use std::arch::x86_64::*;
    let w = _mm256_set1_pd(window);
    let p = approx.as_ptr();
    let mut count = 0usize;
    let mut jb = 0usize;
    while jb < approx.len() {
        let cmp = _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(p.add(jb)), w);
        let mut m = _mm256_movemask_pd(cmp) as u32;
        while m != 0 {
            if count == MAX_WINDOW_CANDIDATES {
                return None;
            }
            out[count] = jb as u32 + m.trailing_zeros();
            count += 1;
            m &= m - 1;
        }
        jb += 4;
    }
    Some(count)
}

/// Tree-reduce eight lane minima with the NaN-keeps-old select form.
#[inline]
fn reduce_min8(mins: &[f64; LANES]) -> f64 {
    let m01 = if mins[1] < mins[0] { mins[1] } else { mins[0] };
    let m23 = if mins[3] < mins[2] { mins[3] } else { mins[2] };
    let m45 = if mins[5] < mins[4] { mins[5] } else { mins[4] };
    let m67 = if mins[7] < mins[6] { mins[7] } else { mins[6] };
    let m0123 = if m23 < m01 { m23 } else { m01 };
    let m4567 = if m67 < m45 { m67 } else { m45 };
    if m4567 < m0123 {
        m4567
    } else {
        m0123
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::nearest_centroid;
    use crate::seeding::rng_for;
    use rand::Rng;

    #[test]
    fn matches_scalar_bit_for_bit_on_random_inputs() {
        let mut rng = rng_for(21, 0);
        for _ in 0..400 {
            let dim = rng.gen_range(1usize..12);
            let k = rng.gen_range(1usize..40);
            let cents: Vec<f64> = (0..k * dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let layout = FusedLayout::new(&cents, dim);
            let mut scratch = vec![0.0; layout.scratch_len()];
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let naive = nearest_centroid(&x, &cents, dim);
            let fused = layout.nearest(&x, &mut scratch);
            assert_eq!(fused.0, naive.0, "index (dim={dim}, k={k})");
            assert_eq!(fused.1.to_bits(), naive.1.to_bits(), "distance bits");
        }
    }

    #[test]
    fn duplicate_centroids_tie_break_to_lowest_index() {
        // Centroids 0 and 1 are identical; 2 is the true nearest's double.
        let cents = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let layout = FusedLayout::new(&cents, 2);
        let mut scratch = vec![0.0; layout.scratch_len()];
        let (j, d) = layout.nearest(&[1.0, 1.0], &mut scratch);
        assert_eq!((j, d), (0, 0.0));
        let naive = nearest_centroid(&[1.0, 1.0], &cents, 2);
        assert_eq!((j, d), naive);
    }

    #[test]
    fn exact_tie_between_mirrored_centroids() {
        // (0,0) is exactly equidistant from (−1,0) and (1,0); both layers
        // must settle on index 0.
        let cents = [-1.0, 0.0, 1.0, 0.0];
        let layout = FusedLayout::new(&cents, 2);
        let mut scratch = vec![0.0; layout.scratch_len()];
        assert_eq!(layout.nearest(&[0.0, 0.0], &mut scratch), (0, 1.0));
    }

    #[test]
    fn single_centroid_and_k_not_multiple_of_lanes() {
        for k in [1usize, 7, 8, 9, 17] {
            let cents: Vec<f64> = (0..k * 3).map(|i| i as f64 * 0.25).collect();
            let layout = FusedLayout::new(&cents, 3);
            assert_eq!(layout.k(), k);
            let mut scratch = vec![0.0; layout.scratch_len()];
            let x = [50.0, -3.0, 0.125];
            assert_eq!(layout.nearest(&x, &mut scratch), nearest_centroid(&x, &cents, 3));
        }
    }

    #[test]
    fn stats_tally_points_and_rescues() {
        let cents = [0.0, 0.0, 10.0, 10.0];
        let layout = FusedLayout::new(&cents, 2);
        let mut scratch = vec![0.0; layout.scratch_len()];
        let mut stats = KernelStats::default();
        for i in 0..10 {
            layout.nearest_counted(&[i as f64, 0.5], &mut scratch, &mut stats);
        }
        assert_eq!(stats.points, 10);
        // Every point rescues at least its screened winner.
        assert!(stats.rescued >= 10);
        assert!(stats.rescues_per_point() >= 1.0);
    }

    #[test]
    fn simd_and_portable_dispatch_agree() {
        let mut rng = rng_for(22, 0);
        for _ in 0..200 {
            let dim = rng.gen_range(1usize..10);
            let k = rng.gen_range(1usize..70);
            let cents: Vec<f64> = (0..k * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let simd = FusedLayout::new(&cents, dim);
            let mut portable = simd.clone();
            portable.isa = ScreenIsa::Portable;
            let mut s1 = vec![0.0; simd.scratch_len()];
            let mut s2 = vec![0.0; simd.scratch_len()];
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let a = simd.nearest(&x, &mut s1);
            let b = portable.nearest(&x, &mut s2);
            assert_eq!(a.0, b.0, "index ({}, dim={dim}, k={k})", simd.isa_label());
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "distance bits ({})", simd.isa_label());
        }
    }

    #[test]
    fn huge_magnitude_gaps_stay_exact() {
        // Mixed scales stress the margin: ‖c‖² spans 24 orders of magnitude.
        let cents = [1e-6, 0.0, 1e6, 0.0, -1e6, 0.0];
        let layout = FusedLayout::new(&cents, 2);
        let mut scratch = vec![0.0; layout.scratch_len()];
        for x in [[0.0, 0.0], [5e5, 1.0], [-5e5 - 1.0, 0.0], [1e-6, 0.0]] {
            assert_eq!(layout.nearest(&x, &mut scratch), nearest_centroid(&x, &cents, 2));
        }
    }
}
