//! Initial-centroid selection.
//!
//! Three strategies (see [`SeedMode`]):
//! * random distinct points — serial and partial k-means (paper §2 step 1),
//! * heaviest points — merge k-means (paper §3.3 step 1: seeds are the k
//!   centroids with the largest weights, which "forces the algorithm to take
//!   into account which data points are likely to represent significant
//!   cluster centroids already"),
//! * k-means++ — an ablation extension, not used by the paper.

use crate::config::SeedMode;
use crate::dataset::{Centroids, PointSource};
use crate::error::{Error, Result};
use crate::point::sq_dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: turns `(base, stream)` into an independent RNG seed.
///
/// Used everywhere a base experiment seed must fan out into per-restart,
/// per-chunk or per-version streams; any two distinct inputs give
/// uncorrelated outputs, so results do not depend on scheduling order.
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded standard RNG for the given `(base, stream)` pair.
pub fn rng_for(base: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base, stream))
}

/// Selects `k` initial centroids from `src` according to `mode`.
///
/// # Errors
/// * [`Error::EmptyDataset`] if `src` has no points,
/// * [`Error::ZeroK`] if `k == 0`,
/// * [`Error::KExceedsPoints`] if `k > src.len()`.
pub fn seed_centroids<S: PointSource + ?Sized>(
    src: &S,
    k: usize,
    mode: SeedMode,
    rng: &mut StdRng,
) -> Result<Centroids> {
    if src.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if k == 0 {
        return Err(Error::ZeroK);
    }
    if k > src.len() {
        return Err(Error::KExceedsPoints { k, points: src.len() });
    }
    let indices = match mode {
        SeedMode::RandomPoints => sample_without_replacement(src.len(), k, rng),
        SeedMode::HeaviestPoints => heaviest_indices(src, k),
        SeedMode::PlusPlus => plus_plus_indices(src, k, rng),
    };
    let dim = src.dim();
    let mut flat = Vec::with_capacity(k * dim);
    for &i in &indices {
        flat.extend_from_slice(src.coords(i));
    }
    Centroids::from_flat(dim, flat)
}

/// k distinct indices drawn uniformly from `0..n` (Floyd-style via partial
/// Fisher–Yates on an index vector; O(n) setup, fine for chunk-sized n).
fn sample_without_replacement(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Indices of the k heaviest points, ties broken toward the lower index.
fn heaviest_indices<S: PointSource + ?Sized>(src: &S, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..src.len()).collect();
    // Stable ordering: sort by (weight desc, index asc). `sort_by` is stable
    // so sorting by weight descending preserves index order among ties.
    idx.sort_by(|&a, &b| {
        src.weight(b).partial_cmp(&src.weight(a)).unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

/// k-means++ D² sampling, taking point weights into account
/// (probability ∝ weight × squared distance to the nearest chosen seed).
fn plus_plus_indices<S: PointSource + ?Sized>(src: &S, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = src.len();
    let mut chosen = Vec::with_capacity(k);
    // First seed: weight-proportional draw.
    let total_w = src.total_weight();
    let mut target = rng.gen_range(0.0..total_w.max(f64::MIN_POSITIVE));
    let mut first = n - 1;
    for i in 0..n {
        target -= src.weight(i);
        if target <= 0.0 {
            first = i;
            break;
        }
    }
    chosen.push(first);

    let mut d2: Vec<f64> = (0..n).map(|i| sq_dist(src.coords(i), src.coords(first))).collect();
    while chosen.len() < k {
        let total: f64 = d2.iter().zip(0..n).map(|(d, i)| d * src.weight(i)).sum();
        let next = if total <= 0.0 {
            // All remaining mass sits on already-chosen coordinates
            // (duplicate points); fall back to the first unchosen index.
            (0..n).find(|i| !chosen.contains(i)).unwrap_or(0)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, d) in d2.iter().enumerate() {
                target -= d * src.weight(i);
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = sq_dist(src.coords(i), src.coords(next));
            if d < *slot {
                *slot = d;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, WeightedSet};

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n {
            ds.push(&[i as f64, (i * i) as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn derive_seed_distinguishes_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn random_seeding_yields_k_distinct_points() {
        let ds = dataset(50);
        let mut rng = rng_for(1, 0);
        let c = seed_centroids(&ds, 10, SeedMode::RandomPoints, &mut rng).unwrap();
        assert_eq!(c.k(), 10);
        // All seeds are actual dataset points and pairwise distinct
        // (the dataset has distinct rows).
        for s in c.iter() {
            assert!(ds.iter().any(|p| p == s));
        }
        for i in 0..c.k() {
            for j in (i + 1)..c.k() {
                assert_ne!(c.centroid(i), c.centroid(j));
            }
        }
    }

    #[test]
    fn random_seeding_is_reproducible() {
        let ds = dataset(30);
        let a = seed_centroids(&ds, 5, SeedMode::RandomPoints, &mut rng_for(9, 3)).unwrap();
        let b = seed_centroids(&ds, 5, SeedMode::RandomPoints, &mut rng_for(9, 3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_seeding_k_equals_n_uses_all_points() {
        let ds = dataset(6);
        let c = seed_centroids(&ds, 6, SeedMode::RandomPoints, &mut rng_for(0, 0)).unwrap();
        let mut seen: Vec<&[f64]> = c.iter().collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect: Vec<&[f64]> = ds.iter().collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, expect);
    }

    #[test]
    fn heaviest_seeding_picks_top_weights() {
        let mut ws = WeightedSet::new(1).unwrap();
        for (i, w) in [(0, 5.0), (1, 50.0), (2, 1.0), (3, 20.0), (4, 7.0)] {
            ws.push(&[i as f64], w).unwrap();
        }
        let c = seed_centroids(&ws, 2, SeedMode::HeaviestPoints, &mut rng_for(0, 0)).unwrap();
        assert_eq!(c.centroid(0), &[1.0]); // weight 50
        assert_eq!(c.centroid(1), &[3.0]); // weight 20
    }

    #[test]
    fn heaviest_seeding_tie_breaks_by_index() {
        let mut ws = WeightedSet::new(1).unwrap();
        for i in 0..4 {
            ws.push(&[i as f64], 2.0).unwrap();
        }
        let c = seed_centroids(&ws, 2, SeedMode::HeaviestPoints, &mut rng_for(0, 0)).unwrap();
        assert_eq!(c.centroid(0), &[0.0]);
        assert_eq!(c.centroid(1), &[1.0]);
    }

    #[test]
    fn plus_plus_prefers_spread_seeds() {
        // Two tight groups far apart: k-means++ must pick one from each.
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..10 {
            ds.push(&[i as f64 * 0.01]).unwrap();
        }
        for i in 0..10 {
            ds.push(&[1000.0 + i as f64 * 0.01]).unwrap();
        }
        for trial in 0..20 {
            let c = seed_centroids(&ds, 2, SeedMode::PlusPlus, &mut rng_for(trial, 0)).unwrap();
            let lows = c.iter().filter(|s| s[0] < 500.0).count();
            assert_eq!(lows, 1, "trial {trial} picked both seeds in one group");
        }
    }

    #[test]
    fn plus_plus_handles_all_duplicate_points() {
        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..8 {
            ds.push(&[3.0, 3.0]).unwrap();
        }
        let c = seed_centroids(&ds, 3, SeedMode::PlusPlus, &mut rng_for(5, 0)).unwrap();
        assert_eq!(c.k(), 3);
        for s in c.iter() {
            assert_eq!(s, &[3.0, 3.0]);
        }
    }

    #[test]
    fn seeding_errors() {
        let ds = dataset(3);
        let mut rng = rng_for(0, 0);
        assert_eq!(seed_centroids(&ds, 0, SeedMode::RandomPoints, &mut rng), Err(Error::ZeroK));
        assert_eq!(
            seed_centroids(&ds, 4, SeedMode::RandomPoints, &mut rng),
            Err(Error::KExceedsPoints { k: 4, points: 3 })
        );
        let empty = Dataset::new(2).unwrap();
        assert_eq!(
            seed_centroids(&empty, 1, SeedMode::RandomPoints, &mut rng),
            Err(Error::EmptyDataset)
        );
    }

    #[test]
    fn sample_without_replacement_is_uniformish() {
        // Smoke check: over many draws of 1-of-4, each index appears.
        let mut rng = rng_for(7, 7);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let s = sample_without_replacement(4, 1, &mut rng);
            counts[s[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 40, "index {i} drawn only {c}/400 times");
        }
    }
}
