//! Cell-slicing strategies (§6 future work).
//!
//! The paper's experiments deal points into chunks randomly, making every
//! chunk a spatially overlapping sample of the whole cell (">90%"
//! overlapping), and names two alternatives for future work: "data cells
//! can be partitioned into spatially non-overlapping subcells, or a mostly
//! overlapping cells as in our test cases, or in a 'salami'-type slicing
//! strategy". All three are implemented here; the `slicing` ablation bench
//! measures their effect on merged quality.
//!
//! Grid-bucket points carry no positions (the cell *is* the spatial unit),
//! so "non-overlapping subcells" is realized in attribute space: sort by
//! one attribute and cut contiguous ranges — each chunk then covers a
//! disjoint region of the data space, which is exactly the property whose
//! effect on the merge the paper wants examined.

use crate::dataset::{Dataset, PointSource};
use crate::error::{Error, Result};
use crate::partial::partition_random;
use serde::{Deserialize, Serialize};

/// How a cell's points are dealt into `p` chunks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SliceStrategy {
    /// Shuffle, then round-robin: every chunk is an unbiased sample of the
    /// whole cell (the paper's test setup).
    #[default]
    RandomOverlap,
    /// Contiguous runs in arrival order — the paper's "'salami'-type
    /// slicing". Chunks inherit whatever ordering the scan produced.
    Salami,
    /// Sort by one attribute, then cut contiguous ranges: disjoint
    /// data-space subcells (the "spatially non-overlapping" strategy, in
    /// attribute space).
    AttributeRange {
        /// The attribute to sort by.
        dim: usize,
    },
}

/// Slices `ds` into `p` near-equal chunks with the given strategy.
pub fn slice(ds: &Dataset, p: usize, strategy: SliceStrategy, seed: u64) -> Result<Vec<Dataset>> {
    if p == 0 {
        return Err(Error::InvalidPartitioning("zero partitions".into()));
    }
    match strategy {
        SliceStrategy::RandomOverlap => partition_random(ds, p, seed, true),
        SliceStrategy::Salami => salami(ds, p),
        SliceStrategy::AttributeRange { dim } => {
            if dim >= ds.dim() {
                return Err(Error::InvalidPartitioning(format!(
                    "attribute {dim} out of range for {}-dimensional points",
                    ds.dim()
                )));
            }
            attribute_range(ds, p, dim)
        }
    }
}

/// Contiguous runs: chunk `i` gets points `[i·ceil(n/p) .. (i+1)·ceil(n/p))`.
fn salami(ds: &Dataset, p: usize) -> Result<Vec<Dataset>> {
    let n = ds.len();
    let dim = ds.dim();
    let per = n.div_ceil(p).max(1);
    let mut out = Vec::with_capacity(p);
    for c in 0..p {
        let start = (c * per).min(n);
        let end = ((c + 1) * per).min(n);
        let mut chunk = Dataset::with_capacity(dim, end - start)?;
        for i in start..end {
            chunk.push(ds.coords(i))?;
        }
        out.push(chunk);
    }
    Ok(out)
}

/// Sort by `dim`, then salami over the sorted order.
fn attribute_range(ds: &Dataset, p: usize, dim: usize) -> Result<Vec<Dataset>> {
    let mut order: Vec<usize> = (0..ds.len()).collect();
    order.sort_by(|&a, &b| {
        ds.coords(a)[dim].partial_cmp(&ds.coords(b)[dim]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut sorted = Dataset::with_capacity(ds.dim(), ds.len())?;
    for &i in &order {
        sorted.push(ds.coords(i))?;
    }
    salami(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase(n: usize) -> Dataset {
        // Points with strictly increasing first attribute.
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n {
            ds.push(&[i as f64, (n - i) as f64]).unwrap();
        }
        ds
    }

    fn multiset(parts: &[Dataset]) -> Vec<Vec<f64>> {
        let mut all: Vec<Vec<f64>> =
            parts.iter().flat_map(|c| c.iter().map(|p| p.to_vec()).collect::<Vec<_>>()).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all
    }

    #[test]
    fn all_strategies_preserve_the_multiset() {
        let ds = staircase(53);
        let mut orig: Vec<Vec<f64>> = ds.iter().map(|p| p.to_vec()).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for strategy in [
            SliceStrategy::RandomOverlap,
            SliceStrategy::Salami,
            SliceStrategy::AttributeRange { dim: 0 },
            SliceStrategy::AttributeRange { dim: 1 },
        ] {
            let parts = slice(&ds, 7, strategy, 11).unwrap();
            assert_eq!(parts.len(), 7, "{strategy:?}");
            assert_eq!(multiset(&parts), orig, "{strategy:?}");
        }
    }

    #[test]
    fn salami_keeps_arrival_order() {
        let ds = staircase(10);
        let parts = slice(&ds, 3, SliceStrategy::Salami, 0).unwrap();
        assert_eq!(parts[0].coords(0), &[0.0, 10.0]);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].coords(0), &[4.0, 6.0]);
        assert_eq!(parts[2].len(), 2);
    }

    #[test]
    fn attribute_range_chunks_are_disjoint_intervals() {
        // Shuffle the staircase, then slice by attribute 0: each chunk must
        // cover a disjoint value range.
        let ds = staircase(60);
        let shuffled = partition_random(&ds, 1, 5, true).unwrap().remove(0);
        let parts = slice(&shuffled, 4, SliceStrategy::AttributeRange { dim: 0 }, 0).unwrap();
        let ranges: Vec<(f64, f64)> = parts
            .iter()
            .map(|c| {
                let xs: Vec<f64> = c.iter().map(|p| p[0]).collect();
                (
                    xs.iter().copied().fold(f64::INFINITY, f64::min),
                    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            })
            .collect();
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges overlap: {ranges:?}");
        }
    }

    #[test]
    fn attribute_range_rejects_bad_dim() {
        let ds = staircase(5);
        assert!(slice(&ds, 2, SliceStrategy::AttributeRange { dim: 2 }, 0).is_err());
    }

    #[test]
    fn zero_partitions_is_error() {
        let ds = staircase(5);
        assert!(slice(&ds, 0, SliceStrategy::Salami, 0).is_err());
    }

    #[test]
    fn more_chunks_than_points() {
        let ds = staircase(3);
        let parts = slice(&ds, 5, SliceStrategy::Salami, 0).unwrap();
        assert_eq!(parts.len(), 5);
        let total: usize = parts.iter().map(|c| c.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn random_overlap_matches_partition_random() {
        let ds = staircase(40);
        let a = slice(&ds, 4, SliceStrategy::RandomOverlap, 9).unwrap();
        let b = partition_random(&ds, 4, 9, true).unwrap();
        assert_eq!(a, b);
    }
}
