//! The merge k-means step (§3.3).
//!
//! Consumes the weighted centroid sets of every partition and produces the
//! cell's final `k` centroids. Two strategies, mirroring the paper's options:
//!
//! * **collective** (the paper's choice): gather all `M = Σ k_p` weighted
//!   centroids, seed with the `k` heaviest, run weighted k-means once —
//!   every chunk's centroids get "the same statistical chance to contribute";
//! * **incremental** (option a, kept as an ablation): fold partitions in
//!   arrival order, re-clustering the running representation with each new
//!   set. The paper argues this treats early chunks preferentially.

use crate::config::{KMeansConfig, MergeMode, SeedMode};
use crate::dataset::{Centroids, PointSource, WeightedSet};
use crate::error::{Error, Result};
use crate::kmeans::kmeans_observed;
use crate::metrics;
use pmkm_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Final merged representation of a grid cell.
///
/// Serializable so orchestrated runs can persist it as the payload of a
/// per-cell checkpoint (the merged weighted-centroid partial is the
/// bounded summary merge-reduce schemes carry between levels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeOutput {
    /// The cell's final centroid table (at most `k` centroids).
    pub centroids: Centroids,
    /// Input weight captured by each final centroid (sums to the cell's
    /// point count, since partial weights sum to chunk sizes).
    pub cluster_weights: Vec<f64>,
    /// The paper's `E_pm`: weighted SSE of *all* input centroids against the
    /// final centroids. Comparable across merge modes because it is always
    /// evaluated on the full gathered input.
    pub epm: f64,
    /// `epm / total input weight` — the "MSE" the paper tabulates for the
    /// partial/merge rows of Table 2.
    pub mse: f64,
    /// Lloyd iterations of the merge clustering (summed over folds for the
    /// incremental mode).
    pub iterations: usize,
    /// False if any merge clustering hit its iteration cap.
    pub converged: bool,
    /// Number of weighted centroids consumed (`M`).
    pub input_centroids: usize,
    /// Wall time of the merge step (`t merge` in Table 2).
    pub elapsed: Duration,
}

/// A [`MergeOutput`] plus the mass accounting of a fault-tolerant merge:
/// how much input weight the merge *expected* versus what actually arrived
/// in the surviving partial sets.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedMergeOutput {
    /// The merged representation over the surviving sets.
    pub output: MergeOutput,
    /// Input weight the cell should have carried (`Σw_expected`, typically
    /// the cell's point count).
    pub expected_weight: f64,
    /// Input weight actually present in the surviving sets
    /// (`Σw_received`).
    pub received_weight: f64,
    /// `max(0, expected − received)`.
    pub lost_weight: f64,
    /// True when mass was lost (`received < expected`).
    pub degraded: bool,
}

impl DegradedMergeOutput {
    /// `Σw_received / Σw_expected` in `[0, 1]`; `1.0` when nothing was
    /// expected.
    pub fn mass_fraction(&self) -> f64 {
        if self.expected_weight > 0.0 {
            (self.received_weight / self.expected_weight).min(1.0)
        } else {
            1.0
        }
    }
}

/// Fault-tolerant merge: clusters whatever partial sets survived and
/// reports the lost mass instead of failing on an incomplete cell.
///
/// `expected_weight` is the input weight the caller promised for the cell
/// (its point count); the surviving weight is summed from `sets`. At least
/// one non-empty set is still required — a cell with *no* survivors has no
/// representation to offer and keeps returning [`Error::EmptyDataset`].
pub fn merge_degraded_observed(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    mode: MergeMode,
    merge_restarts: usize,
    expected_weight: f64,
    rec: Option<&Recorder>,
) -> Result<DegradedMergeOutput> {
    let received_weight: f64 = sets.iter().flat_map(|s| s.weights().iter()).sum();
    let output = merge_observed(sets, cfg, mode, merge_restarts, rec)?;
    let lost_weight = (expected_weight - received_weight).max(0.0);
    Ok(DegradedMergeOutput {
        output,
        expected_weight,
        received_weight,
        lost_weight,
        degraded: received_weight < expected_weight,
    })
}

/// Merges partition outputs with the requested strategy.
pub fn merge(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    mode: MergeMode,
    merge_restarts: usize,
) -> Result<MergeOutput> {
    merge_observed(sets, cfg, mode, merge_restarts, None)
}

/// [`merge`] with observability hooks: the whole step runs inside a
/// `merge` profiler phase, and the inner weighted k-means nests its own
/// `seed`/`assign`/`update`/`converge` phases and events under it.
pub fn merge_observed(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    mode: MergeMode,
    merge_restarts: usize,
    rec: Option<&Recorder>,
) -> Result<MergeOutput> {
    let _phase = rec.and_then(|r| r.phase("merge"));
    match mode {
        MergeMode::Collective => merge_collective_observed(sets, cfg, merge_restarts, rec),
        MergeMode::Incremental => merge_incremental_observed(sets, cfg, merge_restarts, rec),
    }
}

fn gather(sets: &[WeightedSet]) -> Result<WeightedSet> {
    let dim = sets.iter().find(|s| !s.is_empty()).map(|s| s.dim()).ok_or(Error::EmptyDataset)?;
    let mut all = WeightedSet::new(dim)?;
    for s in sets {
        all.extend_from(s)?;
    }
    Ok(all)
}

/// Collective merge: one weighted k-means over all gathered centroids,
/// seeded with the `k` heaviest (§3.3 step 1).
///
/// # Examples
/// ```
/// use pmkm_core::{merge_collective, KMeansConfig, WeightedSet};
/// let mut chunk_a = WeightedSet::new(1)?;
/// chunk_a.push(&[0.0], 40.0)?;
/// chunk_a.push(&[10.0], 60.0)?;
/// let mut chunk_b = WeightedSet::new(1)?;
/// chunk_b.push(&[0.2], 50.0)?;
/// chunk_b.push(&[9.8], 50.0)?;
/// let out = merge_collective(&[chunk_a, chunk_b], &KMeansConfig::paper(2, 3), 1)?;
/// assert_eq!(out.centroids.k(), 2);
/// assert_eq!(out.cluster_weights.iter().sum::<f64>(), 200.0);
/// # Ok::<(), pmkm_core::Error>(())
/// ```
pub fn merge_collective(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    merge_restarts: usize,
) -> Result<MergeOutput> {
    merge_collective_observed(sets, cfg, merge_restarts, None)
}

/// [`merge_collective`] with observability hooks threaded into the inner
/// weighted k-means.
pub fn merge_collective_observed(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    merge_restarts: usize,
    rec: Option<&Recorder>,
) -> Result<MergeOutput> {
    cfg.validate()?;
    let started = Instant::now();
    let all = gather(sets)?;
    if all.len() <= cfg.k {
        // Fewer input centroids than k: the inputs themselves are the exact
        // (zero-E_pm) representation; a k ≥ M k-means would return them.
        return Ok(passthrough(all, started.elapsed()));
    }
    let merge_cfg = KMeansConfig {
        seed_mode: SeedMode::HeaviestPoints,
        restarts: merge_restarts.max(1),
        ..*cfg
    };
    let out = kmeans_observed(&all, &merge_cfg, rec)?;
    Ok(MergeOutput {
        epm: out.best.sse,
        mse: out.best.mse,
        iterations: out.total_iterations(),
        converged: out.best.converged,
        input_centroids: all.len(),
        cluster_weights: out.best.cluster_weights,
        centroids: out.best.centroids,
        elapsed: started.elapsed(),
    })
}

/// Incremental merge: fold partitions in order. The running representation
/// is the weighted centroid set produced by the previous fold.
pub fn merge_incremental(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    merge_restarts: usize,
) -> Result<MergeOutput> {
    merge_incremental_observed(sets, cfg, merge_restarts, None)
}

/// [`merge_incremental`] with observability hooks threaded into each fold's
/// weighted k-means.
pub fn merge_incremental_observed(
    sets: &[WeightedSet],
    cfg: &KMeansConfig,
    merge_restarts: usize,
    rec: Option<&Recorder>,
) -> Result<MergeOutput> {
    cfg.validate()?;
    let started = Instant::now();
    let all = gather(sets)?; // for the comparable E_pm at the end
    if all.len() <= cfg.k {
        return Ok(passthrough(all, started.elapsed()));
    }
    let dim = all.dim();
    let merge_cfg = KMeansConfig {
        seed_mode: SeedMode::HeaviestPoints,
        restarts: merge_restarts.max(1),
        ..*cfg
    };
    let mut running = WeightedSet::new(dim)?;
    let mut iterations = 0usize;
    let mut converged = true;
    for s in sets.iter().filter(|s| !s.is_empty()) {
        running.extend_from(s)?;
        if running.len() <= cfg.k {
            continue; // not enough material to cluster yet
        }
        let out = kmeans_observed(&running, &merge_cfg, rec)?;
        iterations += out.total_iterations();
        converged &= out.best.converged;
        let mut next = WeightedSet::new(dim)?;
        for (j, c) in out.best.centroids.iter().enumerate() {
            let w = out.best.cluster_weights[j];
            if w > 0.0 {
                next.push(c, w)?;
            }
        }
        running = next;
    }
    let centroids =
        Centroids::from_flat(dim, running.iter().flat_map(|(c, _)| c.iter().copied()).collect())?;
    // Evaluate the final representation against ALL original input
    // centroids so incremental and collective E_pm are comparable.
    let ev = metrics::evaluate(&all, &centroids)?;
    Ok(MergeOutput {
        centroids,
        cluster_weights: ev.cluster_weights,
        epm: ev.sse,
        mse: ev.mse,
        iterations,
        converged,
        input_centroids: all.len(),
        elapsed: started.elapsed(),
    })
}

fn passthrough(all: WeightedSet, elapsed: Duration) -> MergeOutput {
    let dim = all.dim();
    let flat: Vec<f64> = all.iter().flat_map(|(c, _)| c.iter().copied()).collect();
    let weights = all.weights().to_vec();
    let m = all.len();
    MergeOutput {
        centroids: Centroids::from_flat(dim, flat).expect("non-empty gathered set"),
        cluster_weights: weights,
        epm: 0.0,
        mse: 0.0,
        iterations: 0,
        converged: true,
        input_centroids: m,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two chunks that each saw the same two far-apart blobs.
    fn chunk_sets() -> Vec<WeightedSet> {
        let mut a = WeightedSet::new(2).unwrap();
        a.push(&[0.1, 0.0], 48.0).unwrap();
        a.push(&[100.0, 100.2], 52.0).unwrap();
        let mut b = WeightedSet::new(2).unwrap();
        b.push(&[-0.1, 0.0], 50.0).unwrap();
        b.push(&[100.0, 99.8], 50.0).unwrap();
        vec![a, b]
    }

    fn cfg(k: usize) -> KMeansConfig {
        KMeansConfig::paper(k, 17)
    }

    #[test]
    fn collective_merge_finds_the_two_blobs() {
        let out = merge_collective(&chunk_sets(), &cfg(2), 1).unwrap();
        assert_eq!(out.centroids.k(), 2);
        assert_eq!(out.input_centroids, 4);
        // Weighted means: x near 0 => (0.1·48 − 0.1·50)/98; x near 100.
        let mut xs: Vec<f64> = out.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0].abs() < 0.1);
        assert!((xs[1] - 100.0).abs() < 0.1);
        // Weight conservation: all 200 points' worth of weight captured.
        let total: f64 = out.cluster_weights.iter().sum();
        assert_eq!(total, 200.0);
        assert!(out.converged);
    }

    #[test]
    fn collective_weighted_mean_is_exact() {
        // One cluster (k=1): final centroid is the weighted mean of inputs.
        let mut s = WeightedSet::new(1).unwrap();
        s.push(&[0.0], 1.0).unwrap();
        s.push(&[10.0], 3.0).unwrap();
        let out = merge_collective(&[s], &cfg(1), 1).unwrap();
        assert_eq!(out.centroids.centroid(0), &[7.5]);
        // E_pm = 1·7.5² + 3·2.5² = 75.
        assert!((out.epm - 75.0).abs() < 1e-12);
        assert!((out.mse - 75.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn passthrough_when_inputs_fewer_than_k() {
        let out = merge_collective(&chunk_sets(), &cfg(40), 1).unwrap();
        assert_eq!(out.centroids.k(), 4); // all 4 inputs kept verbatim
        assert_eq!(out.epm, 0.0);
        assert_eq!(out.iterations, 0);
        let total: f64 = out.cluster_weights.iter().sum();
        assert_eq!(total, 200.0);
    }

    #[test]
    fn incremental_merge_also_finds_blobs() {
        let out = merge_incremental(&chunk_sets(), &cfg(2), 1).unwrap();
        assert_eq!(out.centroids.k(), 2);
        let mut xs: Vec<f64> = out.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0].abs() < 0.2);
        assert!((xs[1] - 100.0).abs() < 0.2);
    }

    #[test]
    fn incremental_epm_evaluated_on_full_input() {
        // E_pm must be computed against all 4 original centroids, so it is
        // directly comparable with the collective number.
        let sets = chunk_sets();
        let col = merge_collective(&sets, &cfg(2), 1).unwrap();
        let inc = merge_incremental(&sets, &cfg(2), 1).unwrap();
        assert_eq!(col.input_centroids, inc.input_centroids);
        // Both recover the same 2-blob structure here.
        assert!((col.epm - inc.epm).abs() < 1e-9, "{} vs {}", col.epm, inc.epm);
    }

    #[test]
    fn merge_dispatch_respects_mode() {
        let sets = chunk_sets();
        let a = merge(&sets, &cfg(2), MergeMode::Collective, 1).unwrap();
        let b = merge_collective(&sets, &cfg(2), 1).unwrap();
        assert_eq!(a.centroids, b.centroids);
        let c = merge(&sets, &cfg(2), MergeMode::Incremental, 1).unwrap();
        let d = merge_incremental(&sets, &cfg(2), 1).unwrap();
        assert_eq!(c.centroids, d.centroids);
    }

    #[test]
    fn all_empty_sets_is_error() {
        let sets = vec![WeightedSet::new(2).unwrap()];
        assert_eq!(merge_collective(&sets, &cfg(2), 1), Err(Error::EmptyDataset));
        assert_eq!(merge_incremental(&sets, &cfg(2), 1), Err(Error::EmptyDataset));
    }

    #[test]
    fn empty_sets_among_inputs_are_skipped() {
        let mut sets = chunk_sets();
        sets.push(WeightedSet::new(2).unwrap());
        let out = merge_incremental(&sets, &cfg(2), 1).unwrap();
        assert_eq!(out.input_centroids, 4);
        assert_eq!(out.centroids.k(), 2);
    }

    #[test]
    fn merge_is_deterministic() {
        let sets = chunk_sets();
        let a = merge_collective(&sets, &cfg(2), 3).unwrap();
        let b = merge_collective(&sets, &cfg(2), 3).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.epm, b.epm);
    }

    #[test]
    fn degraded_merge_reports_lost_mass() {
        // Two chunks expected (200 points), only one arrived.
        let sets = &chunk_sets()[..1];
        let out =
            merge_degraded_observed(sets, &cfg(2), MergeMode::Collective, 1, 200.0, None).unwrap();
        assert!(out.degraded);
        assert_eq!(out.expected_weight, 200.0);
        assert_eq!(out.received_weight, 100.0);
        assert_eq!(out.lost_weight, 100.0);
        assert!((out.mass_fraction() - 0.5).abs() < 1e-12);
        // The merged output still conserves the surviving mass.
        let total: f64 = out.output.cluster_weights.iter().sum();
        assert_eq!(total, 100.0);
    }

    #[test]
    fn degraded_merge_with_full_mass_is_not_degraded() {
        let sets = chunk_sets();
        let full = merge_collective(&sets, &cfg(2), 1).unwrap();
        let out =
            merge_degraded_observed(&sets, &cfg(2), MergeMode::Collective, 1, 200.0, None).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.lost_weight, 0.0);
        assert_eq!(out.mass_fraction(), 1.0);
        // The inner merge is bit-identical to the non-degraded path
        // (modulo wall-clock).
        assert_eq!(out.output.centroids, full.centroids);
        assert_eq!(out.output.cluster_weights, full.cluster_weights);
        assert_eq!(out.output.epm, full.epm);
    }

    #[test]
    fn degraded_merge_with_no_survivors_is_an_error() {
        let sets = vec![WeightedSet::new(2).unwrap()];
        let err = merge_degraded_observed(&sets, &cfg(2), MergeMode::Collective, 1, 50.0, None);
        assert_eq!(err, Err(Error::EmptyDataset));
    }

    #[test]
    fn heaviest_seeding_beats_or_ties_nothing_burned() {
        // Single heavy centroid dominates: seeding must include it.
        let mut s = WeightedSet::new(1).unwrap();
        s.push(&[0.0], 1000.0).unwrap();
        for i in 1..=10 {
            s.push(&[i as f64 * 0.1 + 50.0], 1.0).unwrap();
        }
        let out = merge_collective(&[s], &cfg(2), 1).unwrap();
        // One final centroid sits (almost) exactly on the heavy point.
        let closest = out.centroids.iter().map(|c| c[0].abs()).fold(f64::INFINITY, f64::min);
        assert!(closest < 1e-9, "heavy centroid lost: {closest}");
    }
}
