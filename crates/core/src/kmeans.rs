//! Best-of-R k-means: the paper's outer loop around Lloyd.
//!
//! "To improve the quality k-means can be run several times with different
//! sets of initial seeds, and the representation producing the smallest mean
//! square error is chosen" (§3.2). The paper uses `R = 10` everywhere.

use crate::config::{KMeansConfig, SeedMode};
use crate::dataset::PointSource;
use crate::error::Result;
use crate::lloyd::{lloyd_observed, LloydRun};
use crate::seeding::{rng_for, seed_centroids};
use pmkm_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Per-restart summary kept for telemetry and the experiment harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartStats {
    /// Restart index (`0..R`).
    pub restart: usize,
    /// Final MSE of this restart.
    pub mse: f64,
    /// Lloyd iterations used.
    pub iterations: usize,
    /// Whether the MSE delta criterion was met before the iteration cap.
    pub converged: bool,
}

/// Outcome of a best-of-R k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansOutcome {
    /// The minimum-MSE run.
    pub best: LloydRun,
    /// Which restart produced `best`.
    pub best_restart: usize,
    /// Stats for every restart, in restart order.
    pub restarts: Vec<RestartStats>,
    /// Wall time across all restarts.
    pub elapsed: Duration,
}

impl KMeansOutcome {
    /// Total Lloyd iterations across all restarts (`R·I` in the paper's
    /// complexity analysis).
    pub fn total_iterations(&self) -> usize {
        self.restarts.iter().map(|r| r.iterations).sum()
    }
}

/// Runs `cfg.restarts` independent Lloyd runs and keeps the minimum-MSE one.
///
/// # Examples
/// ```
/// use pmkm_core::{kmeans, Dataset, KMeansConfig};
/// let cell = Dataset::from_rows(&[[0.0], [0.1], [9.0], [9.1]])?;
/// let out = kmeans(&cell, &KMeansConfig::paper(2, 42))?;
/// assert_eq!(out.best.centroids.k(), 2);
/// assert!(out.best.mse < 0.01);
/// # Ok::<(), pmkm_core::Error>(())
/// ```
///
/// Restart `r` derives its RNG stream from `(cfg.seed, r)`, so outcomes are
/// reproducible and independent of evaluation order. With
/// [`SeedMode::HeaviestPoints`] the seeding is deterministic, so only the
/// first restart uses it; later restarts fall back to random points (this is
/// what makes `merge_restarts > 1` meaningful).
pub fn kmeans<S: PointSource + ?Sized>(src: &S, cfg: &KMeansConfig) -> Result<KMeansOutcome> {
    kmeans_observed(src, cfg, None)
}

/// [`kmeans`] with observability hooks: when `rec` is `Some`, every restart
/// emits a `kmeans.restart` event (MSE, iterations, whether it became the
/// best so far) and the recorder's `kmeans_restarts_total` counter is
/// bumped. Iteration-level events come from the underlying
/// [`lloyd_observed`] runs.
pub fn kmeans_observed<S: PointSource + ?Sized>(
    src: &S,
    cfg: &KMeansConfig,
    rec: Option<&Recorder>,
) -> Result<KMeansOutcome> {
    cfg.validate()?;
    let started = Instant::now();
    let mut best: Option<(usize, LloydRun)> = None;
    let mut restarts = Vec::with_capacity(cfg.restarts);
    for r in 0..cfg.restarts {
        let mode = match (cfg.seed_mode, r) {
            (SeedMode::HeaviestPoints, 0) => SeedMode::HeaviestPoints,
            (SeedMode::HeaviestPoints, _) => SeedMode::RandomPoints,
            (mode, _) => mode,
        };
        let mut rng = rng_for(cfg.seed, r as u64);
        let init = {
            let _phase = rec.and_then(|r| r.phase("seed"));
            seed_centroids(src, cfg.k, mode, &mut rng)?
        };
        let run = lloyd_observed(src, &init, &cfg.lloyd, rec)?;
        restarts.push(RestartStats {
            restart: r,
            mse: run.mse,
            iterations: run.iterations,
            converged: run.converged,
        });
        let better = match &best {
            None => true,
            Some((_, b)) => run.mse < b.mse,
        };
        if let Some(rec) = rec {
            rec.registry().counter("kmeans_restarts_total").inc();
            rec.event(
                "kmeans.restart",
                &[
                    ("restart", r.into()),
                    ("mse", run.mse.into()),
                    ("iterations", run.iterations.into()),
                    ("converged", run.converged.into()),
                    ("best", better.into()),
                ],
            );
        }
        if better {
            best = Some((r, run));
        }
    }
    let (best_restart, best) = best.expect("restarts >= 1 is validated");
    Ok(KMeansOutcome { best, best_restart, restarts, elapsed: started.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, WeightedSet};

    fn blobs() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..30 {
            let o = (i % 6) as f64 * 0.05;
            ds.push(&[o, o]).unwrap();
            ds.push(&[10.0 + o, 10.0 + o]).unwrap();
            ds.push(&[-10.0 - o, 10.0 - o]).unwrap();
        }
        ds
    }

    #[test]
    fn picks_minimum_mse_restart() {
        let ds = blobs();
        let cfg = KMeansConfig { restarts: 8, ..KMeansConfig::paper(3, 123) };
        let out = kmeans(&ds, &cfg).unwrap();
        assert_eq!(out.restarts.len(), 8);
        let min = out.restarts.iter().map(|r| r.mse).fold(f64::INFINITY, f64::min);
        assert_eq!(out.best.mse, min);
        assert_eq!(out.restarts[out.best_restart].mse, min);
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let ds = blobs();
        let cfg = KMeansConfig::paper(3, 77);
        let a = kmeans(&ds, &cfg).unwrap();
        let b = kmeans(&ds, &cfg).unwrap();
        assert_eq!(a.best.centroids, b.best.centroids);
        assert_eq!(a.best_restart, b.best_restart);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn different_seeds_explore_different_inits() {
        let ds = blobs();
        let a = kmeans(&ds, &KMeansConfig { restarts: 1, ..KMeansConfig::paper(3, 1) }).unwrap();
        let b = kmeans(&ds, &KMeansConfig { restarts: 1, ..KMeansConfig::paper(3, 2) }).unwrap();
        // Same data, same k: both converge to a solution; the *trajectories*
        // (iteration counts or centroid order) almost surely differ.
        let differs =
            a.best.centroids != b.best.centroids || a.best.iterations != b.best.iterations;
        assert!(differs);
    }

    #[test]
    fn more_restarts_never_worse() {
        let ds = blobs();
        let base = KMeansConfig::paper(3, 555);
        let one = kmeans(&ds, &KMeansConfig { restarts: 1, ..base }).unwrap();
        let ten = kmeans(&ds, &KMeansConfig { restarts: 10, ..base }).unwrap();
        assert!(ten.best.mse <= one.best.mse + 1e-15);
    }

    #[test]
    fn heaviest_seed_mode_first_restart_is_deterministic() {
        let mut ws = WeightedSet::new(1).unwrap();
        for (x, w) in [(0.0, 10.0), (1.0, 1.0), (10.0, 9.0), (11.0, 1.0)] {
            ws.push(&[x], w).unwrap();
        }
        let cfg = KMeansConfig {
            k: 2,
            restarts: 1,
            seed_mode: SeedMode::HeaviestPoints,
            ..KMeansConfig::paper(2, 0)
        };
        let out = kmeans(&ws, &cfg).unwrap();
        // Seeds were 0.0 (w=10) and 10.0 (w=9); weighted means of the two
        // natural groups are (0·10+1·1)/11 and (10·9+11·1)/10.
        let c: Vec<f64> = out.best.centroids.as_flat().to_vec();
        let mut c_sorted = c.clone();
        c_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c_sorted[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((c_sorted[1] - 101.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn total_iterations_sums_restarts() {
        let ds = blobs();
        let out = kmeans(&ds, &KMeansConfig::paper(3, 9)).unwrap();
        let sum: usize = out.restarts.iter().map(|r| r.iterations).sum();
        assert_eq!(out.total_iterations(), sum);
        assert!(sum >= out.restarts.len()); // every restart iterates at least once
    }

    #[test]
    fn rejects_invalid_config() {
        let ds = blobs();
        let mut cfg = KMeansConfig::paper(3, 0);
        cfg.restarts = 0;
        assert!(kmeans(&ds, &cfg).is_err());
    }
}
