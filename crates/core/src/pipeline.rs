//! The full partial/merge pipeline over an in-memory grid cell.
//!
//! This is the library-level entry point (Figure 5 of the paper): deal the
//! cell into chunks, run the partial k-means on every chunk — serially or on
//! a worker pool — and merge the weighted centroids. The stream-operator
//! version that adds queues, backpressure and operator cloning lives in the
//! `pmkm-stream` crate; both produce identical clusterings for identical
//! seeds, which the integration tests assert.

use crate::config::PartialMergeConfig;
use crate::dataset::{Dataset, PointSource};
use crate::error::Result;
use crate::merge::{merge, merge_observed, MergeOutput};
use crate::partial::partial_kmeans_observed;
use crate::seeding::derive_seed;
use crate::slicing::slice;
use pmkm_obs::{CellReport, ChunkReport, MergeReport, Recorder, RunReport};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Chunk-size histogram bounds (points per chunk), shared with the stream
/// engine's chunker so the two pipelines report comparable distributions.
pub const CHUNK_SIZE_BOUNDS: [f64; 7] = [64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0];

/// Stream tag separating per-chunk seeds from restart and shuffle streams.
const CHUNK_STREAM: u64 = 0x4348_554E_4B53_4531; // "CHUNKSE1"

/// Summary of one partition's clustering, kept for Table 2 style reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkStats {
    /// Partition index (`0..p`).
    pub chunk: usize,
    /// Points in the partition (`N_j`).
    pub points: usize,
    /// Best-of-R minimum MSE achieved on the partition.
    pub best_mse: f64,
    /// Lloyd iterations summed over the partition's restarts.
    pub total_iterations: usize,
    /// Wall time of the partition's clustering.
    pub elapsed: Duration,
}

/// Result of a full partial/merge run on one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialMergeResult {
    /// The merged representation (final centroids, `E_pm`, merge timing).
    pub merge: MergeOutput,
    /// Per-chunk statistics in chunk order.
    pub chunks: Vec<ChunkStats>,
    /// Number of partitions used (`p`).
    pub partitions: usize,
    /// Wall time of the partial phase — the paper's `t C0−Ci` column. When
    /// chunks run serially this is the sum of chunk times; with a worker
    /// pool it is the elapsed span of the whole phase.
    pub partial_elapsed: Duration,
    /// End-to-end wall time (`overall t` minus data generation).
    pub total_elapsed: Duration,
}

impl PartialMergeResult {
    /// Sum of per-chunk clustering times (machine-seconds of partial work,
    /// independent of how many workers ran it).
    pub fn partial_cpu_time(&self) -> Duration {
        self.chunks.iter().map(|c| c.elapsed).sum()
    }

    /// Total points across all chunks.
    pub fn total_points(&self) -> usize {
        self.chunks.iter().map(|c| c.points).sum()
    }
}

/// Runs the pipeline with all partial steps on the calling thread — the
/// paper's "even if all partial k-means steps are run serially on one
/// machine" configuration used for Table 2.
pub fn partial_merge(ds: &Dataset, cfg: &PartialMergeConfig) -> Result<PartialMergeResult> {
    Ok(run(ds, cfg, None, None)?.0)
}

/// Runs the pipeline with full observability: chunk sizes, per-iteration
/// MSE, restart outcomes and pruning rates flow into `rec` (when given),
/// and the call returns a [`RunReport`] for the cell alongside the normal
/// result. `workers = None` runs the partial steps serially, `Some(w)`
/// fans them out exactly like [`partial_merge_with_workers`].
pub fn partial_merge_observed(
    ds: &Dataset,
    cfg: &PartialMergeConfig,
    workers: Option<usize>,
    rec: Option<&Recorder>,
) -> Result<(PartialMergeResult, RunReport)> {
    let started = Instant::now();
    let (res, trajectories) = run(ds, cfg, workers.map(|w| w.max(1)), rec)?;
    if let Some(rec) = rec {
        rec.event(
            "merge.done",
            &[
                ("input_centroids", res.merge.input_centroids.into()),
                ("epm", res.merge.epm.into()),
                ("mse", res.merge.mse.into()),
                ("iterations", res.merge.iterations.into()),
                ("converged", res.merge.converged.into()),
            ],
        );
    }
    let chunks = res
        .chunks
        .iter()
        .zip(trajectories)
        .map(|(c, mse_trajectory)| ChunkReport {
            chunk: c.chunk,
            points: c.points,
            best_mse: c.best_mse,
            iterations: c.total_iterations,
            elapsed: c.elapsed,
            mse_trajectory,
        })
        .collect();
    let report = RunReport {
        elapsed: started.elapsed(),
        cells: vec![CellReport {
            cell: "in-memory".to_string(),
            total_points: res.total_points(),
            expected_points: res.total_points() as f64,
            lost_points: 0.0,
            lost_chunks: 0,
            degraded: false,
            chunks,
            merge: MergeReport {
                input_centroids: res.merge.input_centroids,
                epm: res.merge.epm,
                mse: res.merge.mse,
                iterations: res.merge.iterations,
                converged: res.merge.converged,
                elapsed: res.merge.elapsed,
            },
        }],
        metrics: rec.map(|r| r.registry().snapshot()).unwrap_or_default(),
        phases: rec.map(|r| r.phase_rows()).unwrap_or_default(),
        ..RunReport::new()
    };
    Ok((res, report))
}

/// Runs the pipeline with partial steps fanned out over `workers` threads
/// (operator cloning, Option 1 of §3.4: "clone the partial k-means to as
/// many machines as possible"). `workers == 1` matches [`partial_merge`]
/// output exactly; seeds are per-chunk, so results are identical for any
/// worker count.
pub fn partial_merge_with_workers(
    ds: &Dataset,
    cfg: &PartialMergeConfig,
    workers: usize,
) -> Result<PartialMergeResult> {
    Ok(run(ds, cfg, Some(workers.max(1)), None)?.0)
}

/// Runs the pipeline with the ECVQ partial step (§3.3 remarks): every chunk
/// is quantized with entropy-constrained VQ under `ecvq_cfg` (per-chunk
/// seeds derived like the k-means path), then the adaptive-size weighted
/// codebooks are merged with the ordinary weighted merge k-means from
/// `cfg.kmeans`.
pub fn partial_merge_ecvq(
    ds: &Dataset,
    cfg: &PartialMergeConfig,
    ecvq_cfg: &crate::ecvq::EcvqConfig,
) -> Result<PartialMergeResult> {
    cfg.validate()?;
    let started = Instant::now();
    let p = cfg.partitions.resolve(ds.len(), ds.dim())?;
    let parts = slice(ds, p, cfg.slicing, cfg.kmeans.seed)?;
    let partial_started = Instant::now();
    let mut outputs = Vec::new();
    for (i, chunk) in parts.iter().enumerate().filter(|(_, c)| !c.is_empty()) {
        let chunk_cfg = crate::ecvq::EcvqConfig {
            seed: derive_seed(ecvq_cfg.seed, CHUNK_STREAM ^ i as u64),
            ..*ecvq_cfg
        };
        outputs.push((i, crate::partial::partial_ecvq(chunk, &chunk_cfg)?));
    }
    let partial_elapsed = partial_started.elapsed();
    let sets: Vec<crate::dataset::WeightedSet> =
        outputs.iter().map(|(_, o)| o.centroids.clone()).collect();
    let merged = merge(&sets, &cfg.kmeans, cfg.merge_mode, cfg.merge_restarts)?;
    let chunks = outputs
        .into_iter()
        .map(|(i, o)| ChunkStats {
            chunk: i,
            points: o.points,
            best_mse: o.best_mse,
            total_iterations: o.total_iterations,
            elapsed: o.elapsed,
        })
        .collect();
    Ok(PartialMergeResult {
        merge: merged,
        chunks,
        partitions: p,
        partial_elapsed,
        total_elapsed: started.elapsed(),
    })
}

fn run(
    ds: &Dataset,
    cfg: &PartialMergeConfig,
    workers: Option<usize>,
    rec: Option<&Recorder>,
) -> Result<(PartialMergeResult, Vec<Vec<f64>>)> {
    cfg.validate()?;
    let started = Instant::now();
    let p = cfg.partitions.resolve(ds.len(), ds.dim())?;
    let parts = slice(ds, p, cfg.slicing, cfg.kmeans.seed)?;
    let nonempty: Vec<(usize, &Dataset)> =
        parts.iter().enumerate().filter(|(_, c)| !c.is_empty()).collect();
    if let Some(rec) = rec {
        let hist = rec.registry().histogram("chunk_points", &CHUNK_SIZE_BOUNDS);
        for &(_, chunk) in &nonempty {
            hist.observe(chunk.len() as f64);
        }
    }

    let partial_started = Instant::now();
    let outputs: Vec<(usize, crate::partial::PartialOutput)> = match workers {
        None => {
            let mut v = Vec::with_capacity(nonempty.len());
            for &(i, chunk) in &nonempty {
                let _phase = rec.and_then(|r| r.phase("partial"));
                v.push((i, partial_kmeans_observed(chunk, &chunk_cfg(cfg, i), rec)?));
            }
            v
        }
        Some(w) => {
            use rayon::prelude::*;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(w)
                .build()
                .map_err(|e| crate::error::Error::InvalidConfig(e.to_string()))?;
            // `Recorder` is `Sync`: sinks and registry are internally
            // locked, so the workers can share `rec` directly.
            pool.install(|| {
                nonempty
                    .par_iter()
                    .map(|&(i, chunk)| {
                        let _phase = rec.and_then(|r| r.phase("partial"));
                        Ok((i, partial_kmeans_observed(chunk, &chunk_cfg(cfg, i), rec)?))
                    })
                    .collect::<Result<Vec<_>>>()
            })?
        }
    };
    let partial_elapsed = partial_started.elapsed();

    let sets: Vec<crate::dataset::WeightedSet> =
        outputs.iter().map(|(_, o)| o.centroids.clone()).collect();
    let merged = merge_observed(&sets, &cfg.kmeans, cfg.merge_mode, cfg.merge_restarts, rec)?;

    let mut chunks = Vec::with_capacity(outputs.len());
    let mut trajectories = Vec::with_capacity(outputs.len());
    for (i, o) in outputs {
        chunks.push(ChunkStats {
            chunk: i,
            points: o.points,
            best_mse: o.best_mse,
            total_iterations: o.total_iterations,
            elapsed: o.elapsed,
        });
        trajectories.push(o.best_trajectory);
    }

    Ok((
        PartialMergeResult {
            merge: merged,
            chunks,
            partitions: p,
            partial_elapsed,
            total_elapsed: started.elapsed(),
        },
        trajectories,
    ))
}

fn chunk_cfg(cfg: &PartialMergeConfig, chunk: usize) -> crate::config::KMeansConfig {
    crate::config::KMeansConfig {
        seed: derive_seed(cfg.kmeans.seed, CHUNK_STREAM ^ chunk as u64),
        ..cfg.kmeans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MergeMode, PartitionSpec};
    use crate::metrics;

    fn three_blob_cell(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n_per {
            let o = (i % 10) as f64 * 0.02;
            ds.push(&[o, o]).unwrap();
            ds.push(&[30.0 + o, 30.0 - o]).unwrap();
            ds.push(&[-30.0 + o, 30.0 + o]).unwrap();
        }
        ds
    }

    #[test]
    fn pipeline_recovers_cluster_structure() {
        let ds = three_blob_cell(60); // 180 points
        let cfg = PartialMergeConfig::paper(3, 5, 42);
        let res = partial_merge(&ds, &cfg).unwrap();
        assert_eq!(res.partitions, 5);
        assert_eq!(res.total_points(), 180);
        assert_eq!(res.merge.centroids.k(), 3);
        // Final centroids land near the three blob centers.
        let mut xs: Vec<f64> = res.merge.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] + 30.0).abs() < 1.0);
        assert!(xs[1].abs() < 1.0);
        assert!((xs[2] - 30.0).abs() < 1.0);
        // Quality against the ORIGINAL points is excellent.
        let mse = metrics::mse_against(&ds, &res.merge.centroids).unwrap();
        assert!(mse < 1.0, "mse = {mse}");
    }

    #[test]
    fn weight_conservation_end_to_end() {
        let ds = three_blob_cell(40); // 120 points
        let cfg = PartialMergeConfig::paper(3, 10, 7);
        let res = partial_merge(&ds, &cfg).unwrap();
        let total: f64 = res.merge.cluster_weights.iter().sum();
        assert!((total - 120.0).abs() < 1e-9);
    }

    #[test]
    fn serial_and_worker_pool_agree_exactly() {
        let ds = three_blob_cell(50);
        let cfg = PartialMergeConfig::paper(3, 6, 99);
        let serial = partial_merge(&ds, &cfg).unwrap();
        for workers in [1, 2, 4] {
            let par = partial_merge_with_workers(&ds, &cfg, workers).unwrap();
            assert_eq!(serial.merge.centroids, par.merge.centroids, "workers={workers}");
            assert_eq!(serial.merge.epm, par.merge.epm);
            assert_eq!(serial.chunks.len(), par.chunks.len());
            for (a, b) in serial.chunks.iter().zip(&par.chunks) {
                assert_eq!(a.chunk, b.chunk);
                assert_eq!(a.best_mse, b.best_mse);
            }
        }
    }

    #[test]
    fn memory_budget_partitioning_is_respected() {
        let ds = three_blob_cell(100); // 300 points × 2 dims × 8 B = 4800 B
        let mut cfg = PartialMergeConfig::paper(3, 1, 5);
        cfg.partitions = PartitionSpec::MemoryBudget { bytes: 800 }; // 50 pts/chunk
        let res = partial_merge(&ds, &cfg).unwrap();
        assert_eq!(res.partitions, 6);
        for c in &res.chunks {
            assert!(c.points <= 50);
        }
    }

    #[test]
    fn incremental_mode_runs_end_to_end() {
        let ds = three_blob_cell(40);
        let mut cfg = PartialMergeConfig::paper(3, 5, 11);
        cfg.merge_mode = MergeMode::Incremental;
        let res = partial_merge(&ds, &cfg).unwrap();
        assert_eq!(res.merge.centroids.k(), 3);
        let mse = metrics::mse_against(&ds, &res.merge.centroids).unwrap();
        assert!(mse < 2.0, "mse = {mse}");
    }

    #[test]
    fn more_partitions_than_points_still_works() {
        let ds = three_blob_cell(2); // 6 points
        let cfg = PartialMergeConfig::paper(3, 10, 0);
        let res = partial_merge(&ds, &cfg).unwrap();
        // Empty chunks are skipped; all 6 points survive to the merge.
        let total: f64 = res.merge.cluster_weights.iter().sum();
        assert_eq!(total, 6.0);
    }

    #[test]
    fn single_partition_equals_plain_kmeans_structure() {
        // p = 1: partial/merge degenerates to k-means on the whole cell plus
        // a trivial merge of k weighted centroids (passthrough).
        let ds = three_blob_cell(30);
        let cfg = PartialMergeConfig::paper(3, 1, 21);
        let res = partial_merge(&ds, &cfg).unwrap();
        assert_eq!(res.partitions, 1);
        assert_eq!(res.merge.centroids.k(), 3);
        assert_eq!(res.merge.epm, 0.0); // passthrough merge
    }

    #[test]
    fn chunk_stats_are_complete() {
        let ds = three_blob_cell(50);
        let cfg = PartialMergeConfig::paper(3, 5, 3);
        let res = partial_merge(&ds, &cfg).unwrap();
        assert_eq!(res.chunks.len(), 5);
        for (i, c) in res.chunks.iter().enumerate() {
            assert_eq!(c.chunk, i);
            assert!(c.points == 30);
            assert!(c.total_iterations > 0);
        }
        assert!(res.partial_cpu_time() <= res.total_elapsed);
    }

    #[test]
    fn profiler_attachment_is_bit_identical_and_reports_phases() {
        use pmkm_obs::profile::Profiler;
        use std::sync::Arc;
        let ds = three_blob_cell(50);
        let cfg = PartialMergeConfig::paper(3, 5, 42);
        let plain = partial_merge(&ds, &cfg).unwrap();
        let rec = Recorder::new().with_profiler(Arc::new(Profiler::new()));
        let (observed, report) = partial_merge_observed(&ds, &cfg, None, Some(&rec)).unwrap();
        // Profiling must never perturb results.
        assert_eq!(plain.merge.centroids, observed.merge.centroids);
        assert_eq!(plain.merge.epm, observed.merge.epm);
        assert_eq!(plain.chunks.len(), observed.chunks.len());
        for (a, b) in plain.chunks.iter().zip(&observed.chunks) {
            assert_eq!(a.best_mse, b.best_mse);
            assert_eq!(a.total_iterations, b.total_iterations);
        }
        // The report carries the phase tree: partial nests the Lloyd
        // phases, merge nests its own k-means run.
        let paths: Vec<&str> = report.phases.iter().map(|p| p.path.as_str()).collect();
        for expected in [
            "partial",
            "partial/seed",
            "partial/assign",
            "partial/update",
            "partial/converge",
            "merge",
            "merge/seed",
            "merge/assign",
        ] {
            assert!(paths.contains(&expected), "missing phase {expected} in {paths:?}");
        }
        for p in &report.phases {
            assert!(p.self_us <= p.total_us, "{}: self > total", p.path);
            assert!(p.calls > 0, "{}: zero calls", p.path);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = three_blob_cell(40);
        let cfg = PartialMergeConfig::paper(3, 5, 1234);
        let a = partial_merge(&ds, &cfg).unwrap();
        let b = partial_merge(&ds, &cfg).unwrap();
        assert_eq!(a.merge.centroids, b.merge.centroids);
        assert_eq!(a.merge.epm, b.merge.epm);
    }
}
