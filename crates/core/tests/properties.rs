//! Property-based tests for the core invariants of partial/merge k-means.

use pmkm_core::prelude::*;
use pmkm_core::seeding::{derive_seed, rng_for, seed_centroids};
use pmkm_core::{lloyd, point};
use proptest::prelude::*;

/// A small random dataset: n points in `dim` dimensions, coordinates in a
/// bounded range so distances stay well-conditioned.
fn arb_dataset(max_n: usize, max_dim: usize) -> impl Strategy<Value = Dataset> {
    (1..=max_dim, 1..=max_n).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(-1000.0..1000.0f64, dim * n)
            .prop_map(move |flat| Dataset::from_flat(dim, flat).unwrap())
    })
}

fn arb_weighted(max_n: usize, max_dim: usize) -> impl Strategy<Value = WeightedSet> {
    (1..=max_dim, 1..=max_n).prop_flat_map(|(dim, n)| {
        (
            proptest::collection::vec(-100.0..100.0f64, dim * n),
            proptest::collection::vec(0.1..50.0f64, n),
        )
            .prop_map(move |(flat, weights)| {
                let mut ws = WeightedSet::new(dim).unwrap();
                for (chunk, w) in flat.chunks_exact(dim).zip(weights) {
                    ws.push(chunk, w).unwrap();
                }
                ws
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sq_dist_nonnegative_and_symmetric(
        a in proptest::collection::vec(-1e6..1e6f64, 1..8),
        b in proptest::collection::vec(-1e6..1e6f64, 1..8),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert!(point::sq_dist(a, b) >= 0.0);
        prop_assert_eq!(point::sq_dist(a, b), point::sq_dist(b, a));
        prop_assert_eq!(point::sq_dist(a, a), 0.0);
    }

    #[test]
    fn split_round_robin_partitions_exactly(ds in arb_dataset(64, 4), p in 1usize..12) {
        let parts = ds.split_round_robin(p).unwrap();
        prop_assert_eq!(parts.len(), p);
        let total: usize = parts.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, ds.len());
        let min = parts.iter().map(|c| c.len()).min().unwrap();
        let max = parts.iter().map(|c| c.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn partition_random_preserves_multiset(
        ds in arb_dataset(48, 3),
        p in 1usize..10,
        seed in any::<u64>(),
    ) {
        let parts = pmkm_core::partition_random(&ds, p, seed, true).unwrap();
        let mut orig: Vec<Vec<f64>> = ds.iter().map(|r| r.to_vec()).collect();
        let mut got: Vec<Vec<f64>> = parts
            .iter()
            .flat_map(|c| c.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
            .collect();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(orig, got);
    }

    #[test]
    fn lloyd_never_increases_mse_vs_seeding(
        ds in arb_dataset(40, 3),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= ds.len());
        let mut rng = rng_for(seed, 0);
        let init = seed_centroids(&ds, k, SeedMode::RandomPoints, &mut rng).unwrap();
        let init_mse = metrics::mse_against(&ds, &init).unwrap();
        let run = lloyd::lloyd(&ds, &init, &LloydConfig::default()).unwrap();
        prop_assert!(run.mse <= init_mse + 1e-9 * init_mse.abs().max(1.0),
            "final {} > initial {}", run.mse, init_mse);
    }

    #[test]
    fn lloyd_conserves_weight(ds in arb_dataset(40, 3), k in 1usize..5, seed in any::<u64>()) {
        prop_assume!(k <= ds.len());
        let mut rng = rng_for(seed, 1);
        let init = seed_centroids(&ds, k, SeedMode::RandomPoints, &mut rng).unwrap();
        let run = lloyd::lloyd(&ds, &init, &LloydConfig::default()).unwrap();
        let total: f64 = run.cluster_weights.iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        prop_assert_eq!(run.assignments.len(), ds.len());
        for &a in &run.assignments {
            prop_assert!((a as usize) < k);
        }
    }

    #[test]
    fn kmeans_best_is_min_over_restarts(
        ds in arb_dataset(30, 2),
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= ds.len());
        let cfg = KMeansConfig { restarts: 4, ..KMeansConfig::paper(k, seed) };
        let out = pmkm_core::kmeans(&ds, &cfg).unwrap();
        let min = out.restarts.iter().map(|r| r.mse).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(out.best.mse, min);
    }

    #[test]
    fn partial_weights_sum_to_chunk_size(
        ds in arb_dataset(60, 3),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = KMeansConfig { restarts: 2, ..KMeansConfig::paper(k, seed) };
        let out = pmkm_core::partial_kmeans(&ds, &cfg).unwrap();
        let total: f64 = out.centroids.weights().iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        prop_assert!(out.centroids.len() <= k.max(ds.len().min(k)) || ds.len() <= k);
    }

    #[test]
    fn merge_conserves_total_weight(ws in arb_weighted(30, 3), k in 1usize..5) {
        let cfg = KMeansConfig { restarts: 2, ..KMeansConfig::paper(k, 7) };
        let out = pmkm_core::merge_collective(std::slice::from_ref(&ws), &cfg, 1).unwrap();
        let total: f64 = out.cluster_weights.iter().sum();
        prop_assert!((total - ws.total_weight()).abs() < 1e-6 * ws.total_weight());
        prop_assert!(out.epm >= 0.0);
    }

    #[test]
    fn weight_scale_invariance_of_merge_centroids(ws in arb_weighted(20, 2), k in 1usize..4) {
        prop_assume!(ws.len() > k);
        let mut scaled = WeightedSet::new(ws.dim()).unwrap();
        for (c, w) in ws.iter() {
            scaled.push(c, w * 8.0).unwrap();
        }
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(k, 3) };
        let a = pmkm_core::merge_collective(std::slice::from_ref(&ws), &cfg, 1).unwrap();
        let b = pmkm_core::merge_collective(&[scaled], &cfg, 1).unwrap();
        for (ca, cb) in a.centroids.iter().zip(b.centroids.iter()) {
            for (x, y) in ca.iter().zip(cb.iter()) {
                prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn full_pipeline_is_deterministic_and_sane(
        ds in arb_dataset(80, 3),
        k in 1usize..5,
        p in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut cfg = PartialMergeConfig::paper(k, p, seed);
        cfg.kmeans.restarts = 2;
        let a = partial_merge(&ds, &cfg).unwrap();
        let b = partial_merge(&ds, &cfg).unwrap();
        prop_assert_eq!(&a.merge.centroids, &b.merge.centroids);
        // Output size never exceeds the gathered centroid count and the
        // final E over the original data is finite.
        let e = metrics::weighted_sse_against(&ds, &a.merge.centroids).unwrap();
        prop_assert!(e.is_finite() && e >= 0.0);
        let total: f64 = a.merge.cluster_weights.iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn derive_seed_has_no_cheap_collisions(base in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..256u64 {
            prop_assert!(seen.insert(derive_seed(base, stream)));
        }
    }

    #[test]
    fn partition_spec_memory_budget_fits(n in 1usize..100_000, dim in 1usize..16) {
        let budget = 64 * 1024; // 64 KiB
        let spec = PartitionSpec::MemoryBudget { bytes: budget };
        let p = spec.resolve(n, dim).unwrap();
        // Every chunk of ceil(n/p) points fits the budget.
        let per_chunk = n.div_ceil(p);
        prop_assert!(per_chunk * dim * 8 <= budget || n == 0);
    }
}

// --- Pipeline invariants (PR 2): mass conservation, E_pm sign, monotone
// --- per-chunk trajectories under the paper's 1e-9 convergence rule.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // §3.2: the partial step's weighted centroids carry every input point
    // exactly once — Σ wᵢ == Nⱼ per chunk, and Σⱼ Nⱼ == n over a random
    // partition of the cell.
    #[test]
    fn partial_conserves_mass_per_chunk_and_overall(
        ds in arb_dataset(72, 3),
        k in 1usize..5,
        p in 1usize..6,
        seed in any::<u64>(),
    ) {
        let chunks = pmkm_core::partition_random(&ds, p, seed, true).unwrap();
        let mut cfg = KMeansConfig::paper(k, seed);
        cfg.restarts = 2;
        let mut grand_total = 0.0f64;
        for chunk in &chunks {
            if chunk.is_empty() {
                continue;
            }
            let out = partial_kmeans(chunk, &cfg).unwrap();
            let mass: f64 = out.centroids.weights().iter().sum();
            prop_assert!(
                (mass - chunk.len() as f64).abs() < 1e-9 * (chunk.len() as f64).max(1.0),
                "chunk mass {} != {}", mass, chunk.len()
            );
            prop_assert_eq!(out.points, chunk.len());
            grand_total += mass;
        }
        prop_assert!((grand_total - ds.len() as f64).abs() < 1e-6);
    }

    // §3.3: E_pm is a weighted sum of squared distances — non-negative,
    // finite, and internally consistent: the tabulated MSE is exactly
    // E_pm / total weight, and the merge conserves the cell's point mass.
    #[test]
    fn epm_is_nonnegative_and_internally_consistent(
        ds in arb_dataset(60, 3),
        k in 1usize..5,
        p in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut cfg = PartialMergeConfig::paper(k, p, seed);
        cfg.kmeans.restarts = 2;
        let result = partial_merge(&ds, &cfg).unwrap();
        prop_assert!(result.merge.epm.is_finite() && result.merge.epm >= 0.0);
        prop_assert!(result.merge.mse.is_finite() && result.merge.mse >= 0.0);

        let total: f64 = result.merge.cluster_weights.iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-6 * (ds.len() as f64).max(1.0));
        let rel = (result.merge.mse * total - result.merge.epm).abs()
            / result.merge.epm.abs().max(1.0);
        prop_assert!(rel <= 1e-9, "mse·W {} vs E_pm {}", result.merge.mse * total, result.merge.epm);
        prop_assert!(result.merge.cluster_weights.iter().all(|w| *w >= 0.0));
    }

    // §2: each Lloyd step minimizes the quantization error given the other
    // half of the state, so the per-run MSE trajectory is non-increasing
    // (to the paper's 1e-9 rule) whenever no empty cluster was reseeded.
    #[test]
    fn mse_trajectory_is_monotone_without_reseeds(
        ds in arb_dataset(64, 4),
        k in 1usize..7,
        seed in any::<u64>(),
        kernel_idx in 0u8..2,
    ) {
        prop_assume!(k <= ds.len());
        let kernel = [KernelKind::Fused, KernelKind::Scalar][kernel_idx as usize];
        let mut rng = rng_for(seed, 3);
        let init = seed_centroids(&ds, k, SeedMode::RandomPoints, &mut rng).unwrap();
        let cfg = LloydConfig { kernel, ..LloydConfig::default() };
        let run = lloyd::lloyd(&ds, &init, &cfg).unwrap();
        prop_assert_eq!(run.mse_trajectory.len(), run.iterations + 1);
        if run.reseeds == 0 {
            for w in run.mse_trajectory.windows(2) {
                prop_assert!(
                    w[1] <= w[0] + 1e-9 * w[0].abs().max(1.0),
                    "trajectory rose: {} -> {}", w[0], w[1]
                );
            }
        }
        prop_assert!(*run.mse_trajectory.last().unwrap() == run.mse);
    }
}
