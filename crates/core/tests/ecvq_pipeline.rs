//! Tests for the ECVQ partial step and the ECVQ pipeline variant
//! (§3.3 remarks: adaptive k per partition).

use pmkm_core::ecvq::EcvqConfig;
use pmkm_core::prelude::*;
use pmkm_core::{partial_ecvq, partial_merge_ecvq, SliceStrategy};

fn blob_cell(n_per: usize) -> Dataset {
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..n_per {
        let o = (i % 10) as f64 * 0.02;
        ds.push(&[o, o]).unwrap();
        ds.push(&[30.0 + o, 30.0 - o]).unwrap();
        ds.push(&[-30.0 + o, 30.0 + o]).unwrap();
    }
    ds
}

#[test]
fn partial_ecvq_emits_adaptive_codebook() {
    let chunk = blob_cell(60); // 180 points, 3 tight blobs
    let cfg = EcvqConfig { max_k: 12, lambda: 50.0, seed: 3, ..EcvqConfig::default() };
    let out = partial_ecvq(&chunk, &cfg).unwrap();
    assert!(out.centroids.len() <= 12);
    // Strong rate penalty on tight blobs starves codewords.
    assert!(out.centroids.len() >= 3);
    let total: f64 = out.centroids.weights().iter().sum();
    assert_eq!(total, 180.0);
    assert!(out.best_mse.is_finite());
}

#[test]
fn stronger_rate_penalty_starves_more_codewords() {
    // The adaptive-k mechanism of §3.3: the Lagrangian rate penalty starves
    // codewords. The same chunk under the same seeds keeps (weakly) fewer
    // codewords as λ grows from 0 to a dominating value.
    let chunk = blob_cell(100); // 300 points
    let free = EcvqConfig { max_k: 20, lambda: 0.0, seed: 1, ..EcvqConfig::default() };
    let costly = EcvqConfig { max_k: 20, lambda: 1e6, seed: 1, ..EcvqConfig::default() };
    let f = partial_ecvq(&chunk, &free).unwrap();
    let c = partial_ecvq(&chunk, &costly).unwrap();
    assert!(
        c.centroids.len() < f.centroids.len(),
        "λ=1e6 kept {} codewords, λ=0 kept {}",
        c.centroids.len(),
        f.centroids.len()
    );
    // Weight is conserved regardless of starvation.
    let total: f64 = c.centroids.weights().iter().sum();
    assert_eq!(total, 300.0);
}

#[test]
fn ecvq_pipeline_recovers_structure() {
    let cell = blob_cell(100); // 300 points
                               // A few merge restarts guard against the heaviest-seed local optimum
                               // (three far-apart blobs, only 3 final centroids).
    let pm = PartialMergeConfig { merge_restarts: 5, ..PartialMergeConfig::paper(3, 5, 9) };
    let ecvq = EcvqConfig { max_k: 10, lambda: 5.0, seed: 9, ..EcvqConfig::default() };
    let out = partial_merge_ecvq(&cell, &pm, &ecvq).unwrap();
    assert_eq!(out.partitions, 5);
    assert_eq!(out.merge.centroids.k(), 3);
    let total: f64 = out.merge.cluster_weights.iter().sum();
    assert_eq!(total, 300.0);
    let mse = metrics::mse_against(&cell, &out.merge.centroids).unwrap();
    assert!(mse < 2.0, "mse = {mse}");
}

#[test]
fn ecvq_pipeline_is_deterministic() {
    let cell = blob_cell(50);
    let pm = PartialMergeConfig::paper(3, 4, 21);
    let ecvq = EcvqConfig { max_k: 8, lambda: 1.0, seed: 21, ..EcvqConfig::default() };
    let a = partial_merge_ecvq(&cell, &pm, &ecvq).unwrap();
    let b = partial_merge_ecvq(&cell, &pm, &ecvq).unwrap();
    assert_eq!(a.merge.centroids, b.merge.centroids);
    assert_eq!(a.merge.epm, b.merge.epm);
}

#[test]
fn ecvq_pipeline_chunks_get_distinct_seeds() {
    // Chunks of identical content still get different ECVQ seeds (derived
    // per chunk index), so codebooks are not trivially identical.
    let mut cell = Dataset::new(1).unwrap();
    for _ in 0..4 {
        for i in 0..50 {
            cell.push(&[(i % 10) as f64]).unwrap();
        }
    }
    let pm =
        PartialMergeConfig { slicing: SliceStrategy::Salami, ..PartialMergeConfig::paper(4, 4, 5) };
    let ecvq = EcvqConfig { max_k: 6, lambda: 0.5, seed: 5, ..EcvqConfig::default() };
    let out = partial_merge_ecvq(&cell, &pm, &ecvq).unwrap();
    assert_eq!(out.chunks.len(), 4);
    let total: f64 = out.merge.cluster_weights.iter().sum();
    assert_eq!(total, 200.0);
}

#[test]
fn ecvq_pipeline_rejects_invalid_configs() {
    let cell = blob_cell(20);
    let pm = PartialMergeConfig::paper(3, 2, 0);
    let bad = EcvqConfig { max_k: 0, ..EcvqConfig::default() };
    assert!(partial_merge_ecvq(&cell, &pm, &bad).is_err());
    let bad = EcvqConfig { lambda: f64::NAN, ..EcvqConfig::default() };
    assert!(partial_merge_ecvq(&cell, &pm, &bad).is_err());
}
