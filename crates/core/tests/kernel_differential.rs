//! Differential tests: the fused SoA kernel vs the naive scalar search.
//!
//! The fused kernel ([`FusedLayout`]) screens with the expanded form
//! ‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖² and then *rescues* every candidate inside
//! the floating-point error window with the exact scalar distance, so it
//! promises **bit-identical** results to [`nearest_centroid`] — same index
//! (same lowest-index tie-break) and same distance bits — not merely
//! approximately equal ones. These tests hold it to that promise across
//! dim ∈ [1, 32] and k ∈ [1, 64], including duplicate centroids, exact
//! ties, and degenerate all-equal inputs, and then check that threading the
//! kernel through full Lloyd runs leaves assignments identical and the MSE
//! within 1e-9 relative of the scalar path.

use pmkm_core::kernel::FusedLayout;
use pmkm_core::point::nearest_centroid;
use pmkm_core::prelude::*;
use pmkm_core::seeding::{rng_for, seed_centroids};
use pmkm_core::{lloyd, KernelStats};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Flat centroid buffer with optional duplicates: with `dup_from` supplied,
/// roughly half the centroids are copies of earlier ones, so ties between
/// identical centroids are common rather than accidental.
fn arb_centroids(max_dim: usize, max_k: usize) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (1..=max_dim, 1..=max_k).prop_flat_map(|(dim, k)| {
        (
            proptest::collection::vec(-100.0..100.0f64, dim * k),
            proptest::collection::vec(any::<u16>(), k),
        )
            .prop_map(move |(mut flat, dups)| {
                for (j, &d) in dups.iter().enumerate().skip(1) {
                    if d % 2 == 0 {
                        let src = (d as usize) % j;
                        let (a, b) = flat.split_at_mut(j * dim);
                        b[..dim].copy_from_slice(&a[src * dim..src * dim + dim]);
                    }
                }
                (dim, k, flat)
            })
    })
}

fn assert_bit_identical(
    dim: usize,
    cents: &[f64],
    points: &[Vec<f64>],
) -> std::result::Result<(), TestCaseError> {
    let layout = FusedLayout::new(cents, dim);
    let mut scratch = vec![0.0; layout.scratch_len()];
    let mut stats = KernelStats::default();
    for x in points {
        let (fj, fd) = layout.nearest_counted(x, &mut scratch, &mut stats);
        let (sj, sd) = nearest_centroid(x, cents, dim);
        prop_assert_eq!(fj, sj, "index diverged for x = {:?}", x);
        prop_assert_eq!(fd.to_bits(), sd.to_bits(), "distance bits diverged: {} vs {}", fd, sd);
    }
    prop_assert_eq!(stats.points, points.len() as u64);
    prop_assert!(stats.rescued >= stats.points, "each point rescues at least its winner");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The headline differential: random centroid tables (with forced
    // duplicates) and random query points across the full supported shape
    // range. Index AND distance must match the scalar search bit for bit.
    #[test]
    fn kernel_matches_scalar_search(
        (dim, k, cents) in arb_centroids(32, 64),
        raw in proptest::collection::vec(-100.0..100.0f64, 32 * 16),
        n in 1usize..16,
    ) {
        let _ = k;
        let points: Vec<Vec<f64>> =
            (0..n).map(|i| raw[i * dim..(i + 1) * dim].to_vec()).collect();
        assert_bit_identical(dim, &cents, &points)?;
    }

    // Exact-tie stress: every query point IS one of the centroids (distance
    // 0 to it and to all its duplicates), so the lowest-index tie-break is
    // exercised on every lookup.
    #[test]
    fn kernel_matches_on_centroid_queries(
        (dim, k, cents) in arb_centroids(16, 48),
        pick in proptest::collection::vec(any::<usize>(), 8),
    ) {
        let points: Vec<Vec<f64>> = pick
            .iter()
            .map(|&p| {
                let j = p % k;
                cents[j * dim..(j + 1) * dim].to_vec()
            })
            .collect();
        assert_bit_identical(dim, &cents, &points)?;
    }

    // Degenerate inputs: all centroids identical (k-way tie on every query)
    // and zero vectors (‖x‖² = ‖c‖² = 0 cancels the screen to exact zero).
    #[test]
    fn kernel_matches_on_degenerate_tables(
        dim in 1usize..33,
        k in 1usize..65,
        v in -10.0..10.0f64,
    ) {
        let cents = vec![v; dim * k];
        let points = vec![vec![v; dim], vec![0.0; dim], vec![-v; dim]];
        assert_bit_identical(dim, &cents, &points)?;
    }

    // Threaded through full Lloyd runs: the fused path must reproduce the
    // scalar path's assignments exactly and its MSE to ≤ 1e-9 relative —
    // the acceptance bar — on both unweighted and weighted sources.
    #[test]
    fn fused_lloyd_matches_scalar_lloyd(
        flat in proptest::collection::vec(-1000.0..1000.0f64, 6..360),
        dim in 1usize..7,
        k in 1usize..9,
        seed in any::<u64>(),
    ) {
        let n = flat.len() / dim;
        prop_assume!(n >= 1);
        let ds = Dataset::from_flat(dim, flat[..n * dim].to_vec()).unwrap();
        prop_assume!(k <= ds.len());
        let mut rng = rng_for(seed, 7);
        let init = seed_centroids(&ds, k, SeedMode::RandomPoints, &mut rng).unwrap();

        let scalar_cfg = LloydConfig { kernel: KernelKind::Scalar, ..LloydConfig::default() };
        let fused_cfg = LloydConfig { kernel: KernelKind::Fused, ..LloydConfig::default() };
        let s = lloyd::lloyd(&ds, &init, &scalar_cfg).unwrap();
        let f = lloyd::lloyd(&ds, &init, &fused_cfg).unwrap();

        prop_assert_eq!(&f.assignments, &s.assignments, "assignments diverged");
        prop_assert_eq!(f.iterations, s.iterations);
        let rel = (f.mse - s.mse).abs() / s.mse.abs().max(1.0);
        prop_assert!(rel <= 1e-9, "relative MSE gap {} > 1e-9 ({} vs {})", rel, f.mse, s.mse);
        prop_assert_eq!(f.mse.to_bits(), s.mse.to_bits(), "expected bit-identical MSE");
    }

    // Same bar for weighted sources (the merge step's input) — including
    // k > distinct points, which forces empty clusters and reseeding.
    #[test]
    fn fused_weighted_lloyd_matches_scalar(
        flat in proptest::collection::vec(-50.0..50.0f64, 4..120),
        weights_raw in proptest::collection::vec(0.5..20.0f64, 60),
        dim in 1usize..5,
        k in 1usize..13,
        seed in any::<u64>(),
    ) {
        let n = flat.len() / dim;
        prop_assume!(n >= 1 && k <= n);
        let mut ws = WeightedSet::new(dim).unwrap();
        for i in 0..n {
            ws.push(&flat[i * dim..(i + 1) * dim], weights_raw[i % weights_raw.len()]).unwrap();
        }
        let mut rng = rng_for(seed, 11);
        let init = seed_centroids(&ws, k, SeedMode::RandomPoints, &mut rng).unwrap();

        let scalar_cfg = LloydConfig { kernel: KernelKind::Scalar, ..LloydConfig::default() };
        let fused_cfg = LloydConfig { kernel: KernelKind::Fused, ..LloydConfig::default() };
        let s = lloyd::lloyd(&ws, &init, &scalar_cfg).unwrap();
        let f = lloyd::lloyd(&ws, &init, &fused_cfg).unwrap();

        prop_assert_eq!(&f.assignments, &s.assignments);
        prop_assert_eq!(f.reseeds, s.reseeds);
        prop_assert_eq!(f.mse.to_bits(), s.mse.to_bits());
    }

    // Every selectable strategy lands on the same geometry: the
    // Auto-resolved fused kernel is bit-identical to scalar.
    #[test]
    fn all_strategies_agree_on_final_mse(
        flat in proptest::collection::vec(-500.0..500.0f64, 8..240),
        dim in 1usize..5,
        k in 1usize..7,
        seed in any::<u64>(),
    ) {
        let n = flat.len() / dim;
        prop_assume!(n >= 1);
        let ds = Dataset::from_flat(dim, flat[..n * dim].to_vec()).unwrap();
        prop_assume!(k <= ds.len());
        let mut rng = rng_for(seed, 13);
        let init = seed_centroids(&ds, k, SeedMode::RandomPoints, &mut rng).unwrap();

        let run = |kernel| {
            let cfg = LloydConfig { kernel, ..LloydConfig::default() };
            lloyd::lloyd(&ds, &init, &cfg).unwrap()
        };
        let scalar = run(KernelKind::Scalar);
        let auto = run(KernelKind::Auto);

        prop_assert_eq!(&auto.assignments, &scalar.assignments);
        prop_assert_eq!(auto.mse.to_bits(), scalar.mse.to_bits(), "Auto must resolve to Fused");
    }
}
