//! Fuzz-ish tests: non-finite coordinates (NaN / ±inf) must surface as a
//! typed [`Error::NonFiniteCoordinate`] at the input boundary — never as a
//! silently poisoned centroid — and ill-conditioned but *finite* inputs must
//! still produce exact assignments from the fused kernel.

use pmkm_core::kernel::FusedLayout;
use pmkm_core::point::{all_finite, first_non_finite, nearest_centroid};
use pmkm_core::prelude::*;
use pmkm_core::KernelStats;
use proptest::prelude::*;

/// One of the three non-finite doubles, selected by index.
fn poison(which: u8) -> f64 {
    match which % 3 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        _ => f64::NEG_INFINITY,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // `all_finite` / `first_non_finite` agree, and injection is always found.
    #[test]
    fn finite_scanners_agree(
        mut coords in proptest::collection::vec(-1e12..1e12f64, 1..64),
        pos in any::<usize>(),
        which in any::<u8>(),
        inject in any::<bool>(),
    ) {
        prop_assert!(all_finite(&coords));
        prop_assert_eq!(first_non_finite(&coords), None);
        if inject {
            let pos = pos % coords.len();
            coords[pos] = poison(which);
            prop_assert!(!all_finite(&coords));
            let found = first_non_finite(&coords).unwrap();
            prop_assert!(found <= pos);
            prop_assert!(!coords[found].is_finite());
        }
    }

    // `Dataset::from_flat` rejects poisoned buffers with the point index.
    #[test]
    fn dataset_from_flat_rejects_poison(
        dim in 1usize..8,
        n in 1usize..32,
        pos in any::<usize>(),
        which in any::<u8>(),
    ) {
        let mut flat = vec![1.5f64; dim * n];
        let pos = pos % flat.len();
        flat[pos] = poison(which);
        match Dataset::from_flat(dim, flat) {
            Err(Error::NonFiniteCoordinate { index }) => prop_assert_eq!(index, pos / dim),
            other => prop_assert!(false, "expected NonFiniteCoordinate, got {:?}", other),
        }
    }

    // `Centroids::from_flat` rejects poisoned buffers with the centroid index.
    #[test]
    fn centroids_from_flat_rejects_poison(
        dim in 1usize..8,
        k in 1usize..16,
        pos in any::<usize>(),
        which in any::<u8>(),
    ) {
        let mut flat = vec![-2.25f64; dim * k];
        let pos = pos % flat.len();
        flat[pos] = poison(which);
        match Centroids::from_flat(dim, flat) {
            Err(Error::NonFiniteCoordinate { index }) => prop_assert_eq!(index, pos / dim),
            other => prop_assert!(false, "expected NonFiniteCoordinate, got {:?}", other),
        }
    }

    // `Dataset::push` / `WeightedSet::push` reject poisoned rows and bad
    // weights, and a rejected push leaves the container untouched.
    #[test]
    fn push_rejects_poison_and_preserves_state(
        dim in 1usize..6,
        pos in any::<usize>(),
        which in any::<u8>(),
        bad_weight_idx in 0u8..4,
    ) {
        let bad_weight = [f64::NAN, f64::INFINITY, 0.0, -1.0][bad_weight_idx as usize];
        let mut row = vec![3.0f64; dim];
        row[pos % dim] = poison(which);

        let mut ds = Dataset::new(dim).unwrap();
        ds.push(&vec![1.0; dim]).unwrap();
        prop_assert!(matches!(
            ds.push(&row),
            Err(Error::NonFiniteCoordinate { index: 1 })
        ));
        prop_assert_eq!(ds.len(), 1);

        let mut ws = WeightedSet::new(dim).unwrap();
        ws.push(&vec![1.0; dim], 2.0).unwrap();
        prop_assert!(matches!(
            ws.push(&row, 1.0),
            Err(Error::NonFiniteCoordinate { index: 1 })
        ));
        prop_assert!(matches!(
            ws.push(&vec![1.0; dim], bad_weight),
            Err(Error::InvalidWeight { index: 1 })
        ));
        prop_assert_eq!(ws.len(), 1);
    }

    // End-to-end poisoning guard: clustering validated finite input can
    // never emit a non-finite centroid, weight, or MSE.
    #[test]
    fn kmeans_output_is_always_finite(
        flat in proptest::collection::vec(-1e8..1e8f64, 2..120),
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let dim = 2;
        let n = flat.len() / dim;
        let ds = Dataset::from_flat(dim, flat[..n * dim].to_vec()).unwrap();
        let mut cfg = KMeansConfig::paper(k.min(n), seed);
        cfg.restarts = 2;
        cfg.lloyd.max_iters = 10;
        let out = pmkm_core::kmeans(&ds, &cfg).unwrap();
        for j in 0..out.best.centroids.k() {
            prop_assert!(all_finite(out.best.centroids.centroid(j)));
        }
        prop_assert!(out.best.mse.is_finite());
        prop_assert!(out.best.cluster_weights.iter().all(|w| w.is_finite()));
    }

    // The fused kernel's overflow fallback: with coordinates large enough
    // that ‖x‖² or the cross term overflows to ±inf, the screen produces
    // inf/NaN approximations — the kernel must degrade to the exact scalar
    // scan and still agree with `nearest_centroid`, never return a bogus
    // index from a NaN comparison.
    #[test]
    fn fused_kernel_survives_overflowing_magnitudes(
        dim in 1usize..7,
        k in 1usize..9,
        scale_exp in 150.0..308.0f64,
        raw in proptest::collection::vec(-1.0..1.0f64, 1..64),
        praw in proptest::collection::vec(-1.0..1.0f64, 8),
    ) {
        let scale = 10f64.powf(scale_exp);
        let mut cents = vec![0.0f64; k * dim];
        for (i, c) in cents.iter_mut().enumerate() {
            let v = raw[i % raw.len()] * scale;
            *c = if v.is_finite() { v } else { 0.0 };
        }
        let x: Vec<f64> = (0..dim).map(|d| praw[d] * scale).collect();
        prop_assume!(all_finite(&x) && all_finite(&cents));

        let layout = FusedLayout::new(&cents, dim);
        let mut scratch = vec![0.0; layout.scratch_len()];
        let mut stats = KernelStats::default();
        let (fj, fd) = layout.nearest_counted(&x, &mut scratch, &mut stats);
        let (sj, sd) = nearest_centroid(&x, &cents, dim);
        prop_assert_eq!(fj, sj);
        // Distances may both be +inf here; bit-compare handles that too.
        prop_assert_eq!(fd.to_bits(), sd.to_bits());
    }
}

/// Serde round-trips cannot resurrect poison either: a `Dataset` is
/// deserialized through the same flat representation it serializes to, so a
/// hand-poisoned JSON payload still fails construction downstream.
#[test]
fn poisoned_singletons_are_rejected() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(matches!(
            Dataset::from_flat(1, vec![bad]),
            Err(Error::NonFiniteCoordinate { index: 0 })
        ));
        assert!(matches!(
            Centroids::from_flat(1, vec![bad]),
            Err(Error::NonFiniteCoordinate { index: 0 })
        ));
    }
}
