//! Drive the Conquest-style stream engine directly: scan grid-bucket files
//! through the chunker into cloned partial k-means operators and the merge
//! operator, then inspect the engine telemetry (the paper's §3.4 claims —
//! the partial operator dominates, the merge operator idles — are visible
//! in the utilization numbers).
//!
//! ```sh
//! cargo run --release --example streaming_pipeline
//! ```

use pmkm_core::KMeansConfig;
use pmkm_data::{CellConfig, GridBucket, GridCell};
use pmkm_stream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three grid buckets of different sizes, on disk.
    let dir = std::env::temp_dir().join(format!("pmkm_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut paths = Vec::new();
    for (i, n) in [30_000usize, 12_000, 4_000].into_iter().enumerate() {
        let cell = GridCell::new(100 + i as u16, 200)?;
        let points = pmkm_data::generator::generate_cell(&CellConfig::paper(n, i as u64))?;
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path)?;
        paths.push(path);
    }

    // Logical plan: cluster each bucket with k = 40, best-of-3 restarts.
    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 3, ..KMeansConfig::paper(40, 11) });

    // The optimizer sizes chunks from the memory budget and clones the
    // partial operator across the detected processors. A small 256 KiB
    // budget forces real chunking (≈5,400 six-dim points per chunk).
    let resources = Resources { chunk_memory_bytes: 256 << 10, ..Resources::detect() };
    let plan = optimize(logical, &resources);
    println!(
        "physical plan: {} partial clones, chunk policy {:?}",
        plan.partial_clones, plan.chunk_policy
    );

    let report = execute(&plan)?;
    println!("\nengine finished in {:.0} ms", report.elapsed.as_secs_f64() * 1e3);
    for cell in &report.cells {
        println!(
            "  cell {}: {} chunks -> {} centroids, E_pm = {:.1}",
            cell.cell.index(),
            cell.chunks.len(),
            cell.output.centroids.k(),
            cell.output.epm
        );
    }

    println!("\noperator telemetry:");
    for op in &report.op_stats {
        println!(
            "  {:<16} clone {}: in {:>5}, out {:>5}, busy {:>8.1} ms, utilization {:>5.1}%",
            op.name,
            op.clone_id,
            op.items_in,
            op.items_out,
            op.busy.as_secs_f64() * 1e3,
            op.utilization() * 100.0
        );
    }
    println!("\nqueue telemetry:");
    for q in &report.queue_stats {
        println!(
            "  {:<18} cap {:>3}: {:>5} sends, {:>5} recvs, {:>3} full-blocks, {:>4} empty-blocks",
            q.name, q.capacity, q.sends, q.recvs, q.full_blocks, q.empty_blocks
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
