//! Tour of the observability layer (`pmkm-obs`): attach a recorder to both
//! the in-memory partial/merge pipeline and the stream engine, then inspect
//! the three outputs it produces —
//!
//! * a **structured event trace** (ring buffer in memory + JSONL on disk),
//! * a **metrics registry** (counters / gauges / histograms, renderable as
//!   Prometheus text),
//! * a **RunReport** (one JSON document per run: per-chunk MSE
//!   trajectories, per-clone busy/blocked split, queue-depth histograms,
//!   span-profiler phase breakdown),
//!
//! plus the two live surfaces added in PR 3: the **span profiler** (folded
//! stacks for flamegraphs) and the **HTTP exporter** (`/metrics`,
//! `/report.json`, `/healthz`).
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use pmkm_core::{partial_merge_observed, KMeansConfig, PartialMergeConfig, PartitionSpec};
use pmkm_data::{CellConfig, GridBucket, GridCell};
use pmkm_obs::{JsonlSink, MetricsServer, Profiler, Recorder, RingBufferSink};
use pmkm_stream::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("pmkm_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // A recorder fans every event out to its sinks; metrics live in its
    // registry. Both sinks here: a bounded in-memory ring (for programmatic
    // inspection) and a JSONL file (for offline tooling).
    let trace_path = dir.join("trace.jsonl");
    let ring = Arc::new(RingBufferSink::new(8192));
    let rec = Arc::new(
        Recorder::new()
            .with_sink(ring.clone())
            .with_sink(Arc::new(JsonlSink::create(&trace_path)?))
            .with_profiler(Arc::new(Profiler::new())),
    );

    // ── 1. Observed in-memory partial/merge ────────────────────────────
    let points = pmkm_data::generator::generate_cell(&CellConfig::paper(20_000, 7))?;
    let pm = PartialMergeConfig {
        kmeans: KMeansConfig { restarts: 3, ..KMeansConfig::paper(40, 7) },
        partitions: PartitionSpec::Count(5),
        ..PartialMergeConfig::paper(40, 5, 7)
    };
    let (result, run_report) = partial_merge_observed(&points, &pm, Some(4), Some(&rec))?;
    println!(
        "partial/merge: {} chunks -> {} centroids, MSE {:.1}",
        result.chunks.len(),
        result.merge.centroids.k(),
        result.merge.mse
    );
    for chunk in &run_report.cells[0].chunks {
        let t = &chunk.mse_trajectory;
        println!(
            "  chunk {}: {} points, best MSE {:>10.1}, trajectory {} -> {} over {} steps",
            chunk.chunk,
            chunk.points,
            chunk.best_mse,
            t.first().map(|v| format!("{v:.0}")).unwrap_or_default(),
            t.last().map(|v| format!("{v:.0}")).unwrap_or_default(),
            t.len()
        );
    }

    // ── 2. Observed stream-engine run over on-disk buckets ─────────────
    let mut paths = Vec::new();
    for (i, n) in [15_000usize, 6_000].into_iter().enumerate() {
        let cell = GridCell::new(100 + i as u16, 200)?;
        let pts = pmkm_data::generator::generate_cell(&CellConfig::paper(n, i as u64))?;
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points: pts }.write_to(&path)?;
        paths.push(path);
    }
    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 3, ..KMeansConfig::paper(40, 11) });
    let resources = Resources { chunk_memory_bytes: 256 << 10, ..Resources::detect() };
    let plan = optimize(logical, &resources);
    let report = execute_observed(&plan, Some(rec.clone()))?;
    println!(
        "\nengine: {} cells in {:.0} ms, {} partial clones",
        report.cells.len(),
        report.elapsed.as_secs_f64() * 1e3,
        plan.partial_clones
    );

    // Per-clone utilization table: the busy/blocked split makes the
    // paper's "merge is mostly idle" claim directly visible.
    println!(
        "\n  {:<16} {:>5}  {:>10}  {:>10}  {:>6}",
        "operator", "clone", "busy", "blocked", "util"
    );
    for op in &report.op_stats {
        println!(
            "  {:<16} {:>5}  {:>8.1}ms  {:>8.1}ms  {:>5.1}%",
            op.name,
            op.clone_id,
            op.busy.as_secs_f64() * 1e3,
            op.blocked.as_secs_f64() * 1e3,
            op.utilization() * 100.0
        );
    }

    // ── 3. The three outputs ───────────────────────────────────────────
    let engine_report = report.run_report(Some(&rec));
    let report_path = dir.join("run_report.json");
    std::fs::write(&report_path, serde_json::to_string_pretty(&engine_report)?)?;
    rec.flush();
    println!("\nrun report : {}", report_path.display());
    println!("trace      : {} ({} events buffered in the ring)", trace_path.display(), ring.len());

    // Prometheus text rendering of the metrics registry (excerpt).
    let prom = rec.registry().render_prometheus();
    println!("\nmetrics (prometheus excerpt):");
    for line in prom.lines().filter(|l| l.contains("lloyd_iterations") || l.contains("partial_")) {
        println!("  {line}");
    }

    // ── 4. Span profiler: phase tree + folded stacks ───────────────────
    // Both runs above fed the same profiler; `phases` is the aggregated
    // tree (total vs self time), `folded()` is inferno-flamegraph input:
    //   cargo run --release --example observability  # then pipe folded
    //   lines into inferno-flamegraph > flame.svg
    println!("\nphase breakdown (total µs / self µs / calls):");
    for p in &engine_report.phases {
        println!("  {:<24} {:>10} {:>10} {:>7}", p.path, p.total_us, p.self_us, p.calls);
    }
    let folded = rec.profiler().expect("profiler attached").folded();
    println!("folded stacks: {} lines (flamegraph-ready)", folded.lines().count());

    // ── 5. HTTP exporter: scrape the run we just recorded ──────────────
    let server = MetricsServer::serve("127.0.0.1:0", rec.clone())?;
    server.set_report(engine_report);
    let addr = server.local_addr();
    println!("\nexporter at http://{addr}:");
    for path in ["/healthz", "/metrics", "/report.json"] {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr)?;
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        let status = response.lines().next().unwrap_or_default();
        println!("  GET {path:<13} -> {status} ({} bytes)", response.len());
        assert!(status.contains("200 OK"), "exporter probe failed: {status}");
    }
    server.shutdown();

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
