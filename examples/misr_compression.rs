//! The paper's motivating pipeline end to end (§1, §3.1):
//!
//! 1. simulate a MISR-like instrument flying swaths over a rotating earth,
//!    writing stripe files in acquisition order,
//! 2. scan the stripes once and sort observations into 1°×1° grid-bucket
//!    files,
//! 3. compress every bucket into a multivariate histogram via partial/merge
//!    k-means,
//! 4. report compression ratios, distortion and moment faithfulness.
//!
//! ```sh
//! cargo run --release --example misr_compression
//! ```

use pmkm_compress::{compress_cell, faithfulness};
use pmkm_core::{PartialMergeConfig, PointSource};
use pmkm_data::binner::bin_stripes;
use pmkm_data::{GridBucket, SwathConfig, SwathSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workdir = std::env::temp_dir().join(format!("pmkm_misr_{}", std::process::id()));
    let stripes_dir = workdir.join("stripes");
    let buckets_dir = workdir.join("buckets");

    // 1. Acquire: 6 orbits over a ±10° latitude band.
    let mut sim = SwathSimulator::new(SwathConfig {
        orbits: 6,
        lat_range: (-10.0, 10.0),
        along_track_step_deg: 0.02,
        cross_track_samples: 16,
        seed: 2026,
        ..SwathConfig::default()
    })?;
    let stripes = sim.write_stripes(&stripes_dir)?;
    println!("acquired {} stripe files", stripes.len());

    // 2. One scan: stripes → grid buckets.
    let summary = bin_stripes(&stripes, &buckets_dir)?;
    println!(
        "binned {} observations into {} grid buckets",
        summary.observations,
        summary.buckets.len()
    );

    // 3 + 4. Compress the five fullest cells.
    let mut buckets: Vec<GridBucket> = summary
        .buckets
        .iter()
        .map(|(_, path)| GridBucket::read_from(path))
        .collect::<Result<_, _>>()?;
    buckets.sort_by_key(|b| std::cmp::Reverse(b.points.len()));
    println!(
        "\n{:>10} {:>7} {:>8} {:>9} {:>10} {:>9}",
        "cell", "points", "buckets", "ratio", "RMS err", "cov err"
    );
    for bucket in buckets.iter().take(5) {
        let k = 20.min(bucket.points.len() / 8).max(1);
        let cfg = PartialMergeConfig::paper(k, 4, 7);
        let out = compress_cell(&bucket.points, &cfg)?;
        let faith = faithfulness(&bucket.points, &out.histogram)?;
        println!(
            "{:>10} {:>7} {:>8} {:>8.1}x {:>10.2} {:>8.1}%",
            bucket.cell.index(),
            bucket.points.len(),
            out.histogram.k(),
            out.summary.ratio,
            out.summary.mse.sqrt(),
            faith.cov_rel_error * 100.0
        );
    }

    std::fs::remove_dir_all(&workdir).ok();
    Ok(())
}
