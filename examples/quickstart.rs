//! Quickstart: cluster one MISR-like grid cell with partial/merge k-means.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pmkm_core::prelude::*;
use pmkm_data::CellConfig;

fn main() -> Result<()> {
    // 1. A synthetic 1°×1° grid cell: 20,000 six-dimensional points (the
    //    paper's "typical monthly summary" size).
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(20_000, 42))
        .expect("generator is infallible for valid configs");
    println!("cell: {} points × {} attributes", cell.len(), cell.dim());

    // 2. Paper defaults: k = 40, best-of-10 restarts, ε = 1e-9, points
    //    dealt randomly into 10 memory-sized chunks, collective merge.
    let cfg = PartialMergeConfig::paper(/*k=*/ 40, /*partitions=*/ 10, /*seed=*/ 7);
    let result = partial_merge(&cell, &cfg)?;

    // 3. What came back.
    println!(
        "partial phase: {} chunks, {:.0} ms total",
        result.partitions,
        result.partial_elapsed.as_secs_f64() * 1e3
    );
    for c in result.chunks.iter().take(3) {
        println!(
            "  chunk {}: {} points, best MSE {:.1}, {} Lloyd iterations",
            c.chunk, c.points, c.best_mse, c.total_iterations
        );
    }
    println!("  …");
    println!(
        "merge phase: {} weighted centroids -> {} final, E_pm = {:.1}, {:.1} ms",
        result.merge.input_centroids,
        result.merge.centroids.k(),
        result.merge.epm,
        result.merge.elapsed.as_secs_f64() * 1e3
    );

    // 4. Quality against the original points.
    let mse = metrics::mse_against(&cell, &result.merge.centroids)?;
    println!("data-space MSE of the final representation: {mse:.1}");

    // 5. The final centroids are weighted: weights sum to the cell size.
    let total: f64 = result.merge.cluster_weights.iter().sum();
    assert_eq!(total, cell.len() as f64);
    println!("weight conservation: {} points accounted for", total as usize);
    Ok(())
}
