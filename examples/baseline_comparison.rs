//! Compare partial/merge k-means against every baseline in this repo on
//! one grid cell: serial best-of-R k-means, the three Figure-2
//! parallelization methods, BIRCH, and STREAM/LOCALSEARCH.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use pmkm_baselines::{
    birch, clarans, method_b, method_c, serial_kmeans, stream_lsearch, BirchConfig, ClaransConfig,
    StreamLsConfig,
};
use pmkm_core::{metrics, partial_merge, KMeansConfig, PartialMergeConfig, PointSource};
use pmkm_data::CellConfig;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 25_000usize;
    let k = 40usize;
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(n, 99))?;
    let kcfg = KMeansConfig { restarts: 5, ..KMeansConfig::paper(k, 17) };
    println!("cell: {n} points × 6 attributes, k = {k}, R = {}\n", kcfg.restarts);
    println!("{:<26} {:>10} {:>12}", "algorithm", "time (ms)", "data MSE");

    let report = |name: &str, ms: f64, mse: f64| {
        println!("{name:<26} {ms:>10.0} {mse:>12.1}");
    };

    // Serial best-of-R.
    let t = Instant::now();
    let serial = serial_kmeans(&cell, &kcfg)?;
    report("serial k-means", t.elapsed().as_secs_f64() * 1e3, serial.outcome.best.mse);

    // Partial/merge, 10 chunks, serial partial phase.
    let pm_cfg = PartialMergeConfig {
        kmeans: kcfg,
        partitions: pmkm_core::PartitionSpec::Count(10),
        ..PartialMergeConfig::paper(k, 10, 17)
    };
    let t = Instant::now();
    let pm = partial_merge(&cell, &pm_cfg)?;
    let mse = metrics::mse_against(&cell, &pm.merge.centroids)?;
    report("partial/merge (10-split)", t.elapsed().as_secs_f64() * 1e3, mse);

    // Partial/merge with 4 workers (operator cloning).
    let t = Instant::now();
    let pm4 = pmkm_core::partial_merge_with_workers(&cell, &pm_cfg, 4)?;
    let mse = metrics::mse_against(&cell, &pm4.merge.centroids)?;
    report("partial/merge (4 workers)", t.elapsed().as_secs_f64() * 1e3, mse);

    // Method B: restarts in parallel.
    let t = Instant::now();
    let mb = method_b(&cell, &kcfg, 4)?;
    report("method B (4 workers)", t.elapsed().as_secs_f64() * 1e3, mb.best.mse);

    // Method C: distributed Lloyd (single restart).
    let t = Instant::now();
    let mc = method_c(&cell, &KMeansConfig { restarts: 1, ..kcfg }, 4)?;
    report(
        &format!("method C (4 slaves, {} msgs)", mc.messages),
        t.elapsed().as_secs_f64() * 1e3,
        mc.mse,
    );

    // BIRCH.
    let t = Instant::now();
    let b = birch(
        &cell,
        &BirchConfig { k, threshold: 60.0, restarts: 5, seed: 17, ..BirchConfig::default() },
    )?;
    let mse = metrics::mse_against(&cell, &b.centroids)?;
    report(
        &format!("BIRCH ({} leaf entries)", b.leaf_entries),
        t.elapsed().as_secs_f64() * 1e3,
        mse,
    );

    // CLARANS (k-medoid; medoids are actual observations).
    let t = Instant::now();
    let cl = clarans(&cell, &ClaransConfig { k, num_local: 2, max_neighbors: 250, seed: 17 })?;
    let mse = metrics::mse_against(&cell, &cl.medoids)?;
    report(
        &format!("CLARANS ({} swaps tried)", cl.neighbors_examined),
        t.elapsed().as_secs_f64() * 1e3,
        mse,
    );

    // STREAM-LS.
    let t = Instant::now();
    let s = stream_lsearch(
        &cell,
        10,
        StreamLsConfig { k, max_retained: k * 12, swap_attempts: 150, seed: 17 },
    )?;
    let mse = metrics::mse_against(&cell, &s.centroids()?)?;
    report(
        &format!("STREAM-LS ({} centers)", s.centers.len()),
        t.elapsed().as_secs_f64() * 1e3,
        mse,
    );

    Ok(())
}
