//! Offline subset of `crossbeam`: a bounded MPMC channel with crossbeam's
//! clone/disconnect semantics, and `thread::scope` layered on
//! `std::thread::scope` with crossbeam's panics-as-`Err` contract.

pub mod channel {
    //! Bounded MPMC channel. Both `Sender` and `Receiver` are cloneable;
    //! the channel disconnects when either side's count reaches zero.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    /// Creates a bounded channel. A capacity of zero is treated as one (the
    /// workspace never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    pub struct Sender<T>(Arc<Inner<T>>);

    pub struct Receiver<T>(Arc<Inner<T>>);

    /// The message could not be sent because the channel is disconnected.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.0.cap {
                    state.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                state = self.0.not_full.wait(state).unwrap();
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.not_empty.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API shape: the closure receives a
    //! scope handle, `spawn` closures receive the scope again (for nested
    //! spawns), and a panic that escapes the scope is returned as `Err`
    //! instead of propagating.

    use std::any::Any;

    /// Copyable handle to a running scope.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle(self.0.spawn(move || f(&this)))
        }
    }

    /// Runs `f` with a scope handle; blocks until every spawned thread
    /// finishes. Returns `Err` with the panic payload if an unjoined child
    /// panicked (crossbeam semantics; `std::thread::scope` would re-panic).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TryRecvError, TrySendError};
    use std::thread as std_thread;

    #[test]
    fn mpmc_delivers_every_item_once() {
        let (tx, rx) = bounded::<u32>(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std_thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_unblocks_when_receiver_drops() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let h = std_thread::spawn(move || tx.send(2));
        std_thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn scope_returns_err_on_child_panic() {
        let out = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }
}
