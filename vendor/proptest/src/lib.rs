//! Offline subset of `proptest`: the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros over a sampling-only `Strategy` trait.
//!
//! Differences from upstream: no shrinking (a failure reports the sampled
//! case verbatim), and cases are seeded deterministically from the test's
//! module path + name + attempt number, so failures replay on rerun.

pub mod test_runner {
    //! Runner configuration, case RNG, and the error type test bodies
    //! return through the `prop_assert*` macros.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Subset of upstream's `Config`: only `cases` is configurable.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// splitmix64 case RNG, seeded from the test identity and attempt
    /// number so every run of a given attempt is reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str, attempt: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The sampling-only `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Always yields a clone of the given value (upstream's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `any::<T>()` support.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, wide-range doubles; upstream samples bit patterns but
            // the workspace only needs well-behaved numerics.
            let mag = rng.next_f64() * 2e9 - 1e9;
            mag + rng.next_f64()
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(65) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// Strategy that samples an arbitrary `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specifier: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// The test-harness macro. Each `#[test] fn name(pat in strategy, ...)`
/// item expands to a `#[test]` that samples `cases` accepted inputs (plus
/// headroom for `prop_assume!` rejections) and panics on the first failing
/// case, reporting the deterministic attempt number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let max_attempts = cfg.cases.saturating_mul(16).max(16);
            let mut accepted = 0u32;
            let mut attempt = 0u32;
            while accepted < cfg.cases && attempt < max_attempts {
                attempt += 1;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (attempt {} of {}): {}",
                            attempt, stringify!($name), msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0..2.0f64, z in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in crate::collection::vec(0u64..100, 2usize..9),
            w in crate::collection::vec(0.0..1.0f64, 3),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (dim, data) in (1usize..5).prop_flat_map(|d| {
                crate::collection::vec(0.0..1.0f64, d * 4).prop_map(move |v| (d, v))
            }),
        ) {
            prop_assert_eq!(data.len(), dim * 4);
        }

        #[test]
        fn assume_skips_cases(n in any::<u8>()) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
