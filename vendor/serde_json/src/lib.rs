//! Offline subset of `serde_json` over the vendored `serde::Value` tree.
//!
//! Floats are printed with Rust's shortest-round-trip `{:?}` formatting
//! (always keeping a decimal point or exponent so they re-parse as floats),
//! which makes `T -> json -> T` lossless for every finite `f64`. Non-finite
//! floats print as `null`, matching upstream's lossy behaviour.

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text and lifts it into `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else {
        // `{:?}` is shortest-round-trip and always keeps `.0` / exponent.
        out.push_str(&format!("{v:?}"));
    }
}

fn push_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn print_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => push_f64(*n, out),
        Value::Str(s) => push_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(indent, level + 1, out);
                print_value(item, indent, level + 1, out);
            }
            push_indent(indent, level, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(indent, level + 1, out);
                push_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(item, indent, level + 1, out);
            }
            push_indent(indent, level, out);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes are
                    // valid; recover the full char.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<i32>("-42").unwrap(), -42);
    }

    #[test]
    fn f64_round_trip_is_lossless() {
        for v in [0.1, 1e-300, 123456.789012345, -3.0000000000000004] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\tü€".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vectors_and_pretty_print() {
        let v = vec![1u64, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  1,"));
        assert_eq!(from_str::<Vec<u64>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<u64>("1 2").is_err());
    }
}
