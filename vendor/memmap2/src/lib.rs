//! Offline shim of the `memmap2` crate: read-only file memory maps.
//!
//! The build container has no crates registry, and the workspace policy is
//! that all unsafe FFI-ish machinery lives in `vendor/` so the product
//! crates can keep `#![forbid(unsafe_code)]`. On Linux x86_64/aarch64 this
//! maps the file with raw `mmap`/`munmap` syscalls (no libc); everywhere
//! else [`Mmap::map`] falls back to reading the file into an owned buffer,
//! which keeps the API total at the cost of the zero-copy property
//! (`Mmap::is_zero_copy` reports which mode is active).
//!
//! Only the subset the workspace uses is provided: `Mmap::map(&File)`,
//! `Deref<Target = [u8]>`, `len`/`is_empty`.

use std::fs::File;
use std::io;
use std::ops::Deref;

const PROT_READ: usize = 0x1;
const MAP_PRIVATE: usize = 0x02;

/// An immutable memory-mapped view of an entire file.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    /// Kernel mapping: base address + length, unmapped on drop.
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mapped { ptr: *const u8, len: usize },
    /// Fallback: the whole file read into an owned buffer.
    Owned(Vec<u8>),
}

// The mapping is immutable (PROT_READ, MAP_PRIVATE) and the kernel keeps it
// valid until munmap, so sharing the view across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// Like upstream memmap2: the map aliases the file, so concurrent
    /// truncation or rewrite of the underlying file by another process is
    /// undefined behaviour. Callers must own the file's lifecycle for the
    /// duration of the map.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        Self::map_readonly(file)
    }

    /// Safe entry point for callers under `forbid(unsafe_code)`: maps
    /// `file` read-only. The aliasing caveat of [`Mmap::map`] still holds
    /// operationally — the file must stay immutable while mapped — but for
    /// write-once inputs (this workspace's bucket files) a stale view is a
    /// checksum failure, not memory unsafety observable through `&[u8]`.
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            // mmap rejects zero-length maps; an empty owned buffer has
            // identical observable behaviour.
            return Ok(Mmap { inner: Inner::Owned(Vec::new()) });
        }
        Self::map_impl(file, len)
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let fd = file.as_raw_fd() as usize;
        let ret = unsafe { sys::mmap(0, len, PROT_READ, MAP_PRIVATE, fd, 0) };
        // Error returns are -errno in [-4095, -1] when cast to isize.
        let as_err = ret as isize;
        if (-4095..0).contains(&as_err) {
            return Err(io::Error::from_raw_os_error(-as_err as i32));
        }
        Ok(Mmap { inner: Inner::Mapped { ptr: ret as *const u8, len } })
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file.try_clone()?;
        f.read_to_end(&mut buf)?;
        Ok(Mmap { inner: Inner::Owned(buf) })
    }

    /// Length of the mapped view in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the view is a kernel mapping (no payload copy was made).
    pub fn is_zero_copy(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Mapped { .. } => true,
            Inner::Owned(_) => false,
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(v) => v.as_slice(),
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Mapped { ptr, len } => unsafe {
                // Best effort; an munmap failure leaks the mapping but
                // cannot corrupt memory we still reference.
                let _ = sys::munmap(*ptr as usize, *len);
            },
            Inner::Owned(_) => {}
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::arch::asm;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;

    pub unsafe fn mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret: usize;
        asm!(
            "syscall",
            inlateout("rax") SYS_MMAP => ret,
            in("rdi") addr,
            in("rsi") len,
            in("rdx") prot,
            in("r10") flags,
            in("r8") fd,
            in("r9") off,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub unsafe fn munmap(addr: usize, len: usize) -> usize {
        let ret: usize;
        asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP => ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    use std::arch::asm;

    const SYS_MMAP: usize = 222;
    const SYS_MUNMAP: usize = 215;

    pub unsafe fn mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret: usize;
        asm!(
            "svc 0",
            inlateout("x8") SYS_MMAP => _,
            inlateout("x0") addr => ret,
            in("x1") len,
            in("x2") prot,
            in("x3") flags,
            in("x4") fd,
            in("x5") off,
            options(nostack),
        );
        ret
    }

    pub unsafe fn munmap(addr: usize, len: usize) -> usize {
        let ret: usize;
        asm!(
            "svc 0",
            inlateout("x8") SYS_MUNMAP => _,
            inlateout("x0") addr => ret,
            in("x1") len,
            options(nostack),
        );
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("memmap2-shim-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents_exactly() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmp("contents", &payload);
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&*map, payload.as_slice());
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty", b"");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn linux_maps_are_zero_copy() {
        let path = tmp("zero-copy", b"abcdef");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_zero_copy());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn many_maps_unmap_cleanly() {
        let payload = vec![7u8; 1 << 16];
        let path = tmp("unmap", &payload);
        for _ in 0..64 {
            let file = File::open(&path).unwrap();
            let map = unsafe { Mmap::map(&file).unwrap() };
            assert_eq!(map[0], 7);
            assert_eq!(map[map.len() - 1], 7);
        }
        std::fs::remove_file(path).unwrap();
    }
}
