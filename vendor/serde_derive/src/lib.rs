//! Derive macros for the vendored `serde` shim.
//!
//! The container has no `syn`/`quote`, so the item is parsed directly from
//! the raw `proc_macro::TokenStream`: attributes and visibility are
//! skipped, the field/variant shape is extracted, and the impl is emitted
//! as source text and re-parsed. Supported shapes are exactly what the
//! workspace uses: non-generic named-field structs, unit structs, tuple
//! structs, and enums with unit / tuple / struct variants. The only
//! `#[serde(...)]` attribute understood is `#[serde(default)]` on a named
//! field, which substitutes `Default::default()` when the key is absent
//! (or explicitly `null`); other attributes are rejected by rustc because
//! only `serde` is registered as a helper attribute, and unknown *contents*
//! of `#[serde(...)]` are ignored here.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

/// One named field and whether it carries `#[serde(default)]`.
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, word: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == word)
}

/// True when the attribute group token (`[...]` after `#`) is
/// `[serde(default)]` (possibly among other comma-separated words).
fn is_serde_default_attr(tok: &TokenTree) -> bool {
    let TokenTree::Group(outer) = tok else { return false };
    if outer.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = outer.stream().into_iter().collect();
    if inner.len() != 2 || !is_ident(&inner[0], "serde") {
        return false;
    }
    match &inner[1] {
        TokenTree::Group(args) if args.delimiter() == Delimiter::Parenthesis => {
            args.stream().into_iter().any(|t| is_ident(&t, "default"))
        }
        _ => false,
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility,
/// reporting whether a `#[serde(default)]` attribute was skipped.
fn skip_meta_flagged(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            if let Some(attr) = toks.get(i + 1) {
                default |= is_serde_default_attr(attr);
            }
            i += 2; // '#' then the bracket group
        } else if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if i < toks.len()
                && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return (i, default);
        }
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_meta(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // '#' then the bracket group
        } else if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if i < toks.len()
                && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

/// Counts the comma-separated segments of a tuple field list at angle depth 0.
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut last_was_comma = false;
    for tok in &toks {
        last_was_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        fields -= 1;
    }
    fields
}

/// Parses `name: Type,` sequences, returning the fields in order with
/// their `#[serde(default)]` markers.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let (next, default) = skip_meta_flagged(&toks, i);
        i = next;
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found `{other}`"),
        };
        i += 1;
        if i >= toks.len() || !is_punct(&toks[i], ':') {
            panic!("serde_derive shim: expected `:` after field `{name}`");
        }
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_meta(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found `{other}`"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&toks, 0);
    let is_enum = loop {
        if i >= toks.len() {
            panic!("serde_derive shim: no struct or enum found");
        }
        if is_ident(&toks[i], "struct") {
            break false;
        }
        if is_ident(&toks[i], "enum") {
            break true;
        }
        i += 1;
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found `{other}`"),
    };
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let kind = if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(tok) if is_punct(tok, ';') => ItemKind::Unit,
            _ => panic!("serde_derive shim: malformed struct `{name}`"),
        }
    };
    Item { name, kind }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl serde::Serialize for {name} {{ \
         fn to_value(&self) -> serde::Value {{ "
    );
    match &item.kind {
        ItemKind::Unit => {
            let _ = write!(out, "serde::Value::Null");
        }
        ItemKind::Tuple(n) => {
            let _ = write!(out, "serde::Value::Seq(vec![");
            for idx in 0..*n {
                let _ = write!(out, "serde::Serialize::to_value(&self.{idx}),");
            }
            let _ = write!(out, "])");
        }
        ItemKind::Named(fields) => {
            let _ = write!(out, "serde::Value::Map(vec![");
            for f in fields {
                let f = &f.name;
                let _ =
                    write!(out, "(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})),");
            }
            let _ = write!(out, "])");
        }
        ItemKind::Enum(variants) => {
            let _ = write!(out, "match self {{ ");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            out,
                            "{name}::{vn}(__f0) => serde::Value::Map(vec![(String::from(\"{vn}\"), \
                             serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(
                            out,
                            "{name}::{vn}({}) => serde::Value::Map(vec![(String::from(\"{vn}\"), \
                             serde::Value::Seq(vec![",
                            binders.join(", ")
                        );
                        for b in &binders {
                            let _ = write!(out, "serde::Serialize::to_value({b}),");
                        }
                        let _ = write!(out, "]))]),");
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let _ = write!(
                            out,
                            "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(String::from(\"{vn}\"), \
                             serde::Value::Map(vec![",
                            binders.join(", ")
                        );
                        for f in &binders {
                            let _ = write!(
                                out,
                                "(String::from(\"{f}\"), serde::Serialize::to_value({f})),"
                            );
                        }
                        let _ = write!(out, "]))]),");
                    }
                }
            }
            let _ = write!(out, "}}");
        }
    }
    let _ = write!(out, "}} }}");
    out.parse().expect("serde_derive shim: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl<'de> serde::Deserialize<'de> for {name} {{ \
         fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{ "
    );
    match &item.kind {
        ItemKind::Unit => {
            let _ = write!(out, "let _ = __v; Ok({name})");
        }
        ItemKind::Tuple(n) => {
            let _ = write!(
                out,
                "match __v {{ serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}("
            );
            for idx in 0..*n {
                let _ = write!(out, "serde::Deserialize::from_value(&__items[{idx}])?,");
            }
            let _ = write!(
                out,
                ")), _ => Err(serde::DeError(String::from(\"expected {n}-element sequence for {name}\"))) }}"
            );
        }
        ItemKind::Named(fields) => {
            let _ = write!(out, "Ok({name} {{ ");
            for f in fields {
                let (f, default) = (&f.name, f.default);
                if default {
                    // Absent key reads as `Value::Null`; substitute the
                    // type's `Default` instead of failing.
                    let _ = write!(
                        out,
                        "{f}: match serde::__field(__v, \"{name}\", \"{f}\")? {{ \
                         serde::Value::Null => ::std::default::Default::default(), \
                         __fv => serde::Deserialize::from_value(__fv)?, }},"
                    );
                } else {
                    let _ = write!(
                        out,
                        "{f}: serde::Deserialize::from_value(serde::__field(__v, \"{name}\", \"{f}\")?)?,"
                    );
                }
            }
            let _ = write!(out, "}})");
        }
        ItemKind::Enum(variants) => {
            let _ = write!(
                out,
                "match __v {{ \
                 serde::Value::Str(__s) => match __s.as_str() {{ "
            );
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    let _ = write!(out, "\"{vn}\" => Ok({name}::{vn}),");
                }
            }
            let _ = write!(
                out,
                "__other => Err(serde::DeError(format!(\"unknown unit variant `{{}}` for {name}\", __other))), }}, \
                 serde::Value::Map(__m) if __m.len() == 1 => {{ \
                 let (__tag, __iv) = &__m[0]; let _ = __iv; \
                 match __tag.as_str() {{ "
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__iv)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => match __iv {{ serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}::{vn}("
                        );
                        for idx in 0..*n {
                            let _ =
                                write!(out, "serde::Deserialize::from_value(&__items[{idx}])?,");
                        }
                        let _ = write!(
                            out,
                            ")), _ => Err(serde::DeError(String::from(\"bad tuple variant {vn} for {name}\"))) }},"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(out, "\"{vn}\" => Ok({name}::{vn} {{ ");
                        for f in fields {
                            let (f, default) = (&f.name, f.default);
                            if default {
                                let _ = write!(
                                    out,
                                    "{f}: match serde::__field(__iv, \"{name}::{vn}\", \"{f}\")? {{ \
                                     serde::Value::Null => ::std::default::Default::default(), \
                                     __fv => serde::Deserialize::from_value(__fv)?, }},"
                                );
                            } else {
                                let _ = write!(
                                    out,
                                    "{f}: serde::Deserialize::from_value(serde::__field(__iv, \"{name}::{vn}\", \"{f}\")?)?,"
                                );
                            }
                        }
                        let _ = write!(out, "}}),");
                    }
                }
            }
            let _ = write!(
                out,
                "__other => Err(serde::DeError(format!(\"unknown variant `{{}}` for {name}\", __other))), }} }}, \
                 __other => Err(serde::DeError(format!(\"expected variant of {name}, found {{:?}}\", __other))), }}"
            );
        }
    }
    let _ = write!(out, "}} }}");
    out.parse().expect("serde_derive shim: generated Deserialize impl did not parse")
}
