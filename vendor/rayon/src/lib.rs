//! Offline sequential drop-in for `rayon`.
//!
//! `par_iter`/`par_iter_mut`/`into_par_iter` return the corresponding std
//! iterators, so every adapter chain written against rayon (`map`, `zip`,
//! `enumerate`, `for_each`, `collect::<Result<_>>`, ...) compiles and runs
//! sequentially with identical results. Bit-exactness tests that compare
//! "parallel" and serial paths therefore hold by construction; wall-clock
//! scaling requires the real rayon.

use std::fmt;
use std::ops::Range;

/// Sequential stand-in for a rayon thread pool.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: if self.num_threads == 0 { 1 } else { self.num_threads } })
    }
}

/// `.par_iter()` — sequential `slice::Iter` under this shim.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

/// `.par_iter_mut()` — sequential `slice::IterMut` under this shim.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

/// `.into_par_iter()` — the owning std iterator under this shim.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Range<usize>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    type Iter = Range<u32>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = Range<u64>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_behave_like_std() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
        let mut w = vec![1, 2, 3];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x += i as i32);
        assert_eq!(w, vec![1, 3, 5]);
    }

    #[test]
    fn pool_installs_on_calling_thread() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
