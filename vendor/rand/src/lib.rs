//! Offline, API-compatible subset of `rand` 0.8.
//!
//! `rngs::StdRng` is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! determinism for a fixed seed, never on matching upstream's bytes.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution (`f64`/`f32` in
    /// `[0, 1)`, full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    /// Panics on an empty range, like upstream.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

// Lemire-style unbiased-enough widening-multiply sampling for integers.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.clone().into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 (deterministic, not upstream's
    /// ChaCha stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
            let x = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&x));
            let y = rng.gen_range(-8i32..-2);
            assert!((-8..-2).contains(&y));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>() + rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = sample(&mut rng);
        assert!((0.0..2.0).contains(&v));
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "{frac}");
    }
}
