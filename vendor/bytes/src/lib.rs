//! Offline subset of `bytes`: contiguous buffers plus the little-endian
//! cursor methods the binary bucket/swath formats use.

use std::ops::Deref;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(std::sync::Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which advances
/// the slice in place exactly like upstream.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor; implemented for `BytesMut` and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 20);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f64_le(), -1.5);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn copy_to_slice_advances() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        let mut dst = [0u8; 2];
        cursor.copy_to_slice(&mut dst);
        assert_eq!(dst, [1, 2]);
        assert_eq!(cursor, &[3, 4]);
    }
}
