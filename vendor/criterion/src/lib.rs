//! Offline lightweight bench harness with `criterion`'s API shape.
//!
//! Each benchmark warms up once, then runs an adaptive batch sized to a
//! small time budget (`CRITERION_MEASURE_MS`, default 100 ms; set it to 0
//! for a single compile-and-run smoke pass) and prints mean ns/iter. No
//! statistics, plots, or baselines — enough to compare hot paths locally.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    last_ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up / smoke run.
        black_box(routine());
        if self.budget.is_zero() {
            self.last_ns_per_iter = 0.0;
            return;
        }
        let mut iters = 1u64;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 20 {
                break;
            }
            // Aim the next batch at the remaining budget.
            iters = (iters * 4).min(1 << 20);
        }
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut bencher = Bencher { budget: self.criterion.measure_budget, last_ns_per_iter: 0.0 };
        f(&mut bencher);
        let ns = bencher.last_ns_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0) / 1e6)
            }
            _ => String::new(),
        };
        println!("bench: {}/{:<40} {:>14.0} ns/iter{}", self.name, id.id, ns, rate);
    }

    pub fn finish(self) {}
}

#[derive(Debug)]
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(100);
        Criterion { measure_budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("main").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(8));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| {
                calls += 1;
                (0..8u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
