//! Offline, API-compatible subset of `serde`.
//!
//! Instead of upstream's visitor-based `Serializer`/`Deserializer` pair,
//! this shim routes everything through one owned tree type, [`Value`]:
//! `Serialize` lowers `self` into a `Value`, `Deserialize` lifts a `Value`
//! back into `Self`. `serde_json` (also vendored) prints and parses that
//! tree. The derive macros are re-exported from `serde_derive`.

use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data tree every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON objects; struct fields keep decl order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error (also re-exported as `de::Error`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
///
/// The lifetime parameter mirrors upstream's borrowed-deserialization API so
/// bounds like `for<'de> Deserialize<'de>` written against real serde keep
/// compiling; this shim always deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Subset of `serde::de`.
    pub use crate::DeError as Error;

    /// Owned-deserialization marker, blanket-implemented exactly like
    /// upstream's.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

fn expected(what: &'static str, got: &Value) -> DeError {
    DeError(format!("expected {what}, found {}", got.kind()))
}

/// Support for derived `Deserialize` impls: field lookup that treats a
/// missing key as `null` (so `Option` fields tolerate absence) and reports
/// the struct name on type mismatch.
#[doc(hidden)]
pub fn __field<'v>(
    value: &'v Value,
    owner: &'static str,
    key: &'static str,
) -> Result<&'v Value, DeError> {
    static NULL: Value = Value::Null;
    match value {
        Value::Map(entries) => {
            Ok(entries.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL))
        }
        other => Err(DeError(format!("expected map for struct {owner}, found {}", other.kind()))),
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    Value::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) if *v >= 0 => *v as u64,
                    Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(expected("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    // serde_json prints non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let got = items.len();
                        let tuple = ($(
                            $name::from_value(it.next().ok_or_else(|| {
                                DeError(format!("tuple too short: {got} elements"))
                            })?)?,
                        )+);
                        Ok(tuple)
                    }
                    other => Err(expected("sequence (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(__field(value, "Duration", "secs")?)?;
        let nanos = u32::from_value(__field(value, "Duration", "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 500_000_000);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn missing_struct_field_reads_as_null() {
        let v = Value::Map(vec![("a".to_string(), Value::U64(1))]);
        assert_eq!(__field(&v, "T", "b").unwrap(), &Value::Null);
        assert!(Option::<u32>::from_value(__field(&v, "T", "b").unwrap()).unwrap().is_none());
    }
}
